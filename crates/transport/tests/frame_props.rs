//! Frame/codec integration properties: the real Fed-SC message types
//! round-trip through wire frames, and corruption of any kind is detected
//! as an `Err` — never a panic, never silent acceptance.

use bytes::Bytes;
use fedsc_federated::channel::{DownlinkMessage, UplinkMessage};
use fedsc_linalg::Matrix;
use fedsc_transport::frame::{read_frame, write_frame, HEADER_LEN};
use fedsc_transport::{Frame, FrameKind};

fn uplink_fixture() -> UplinkMessage {
    let data: Vec<f64> = (0..20 * 9).map(|i| (i as f64) * 0.25 - 7.0).collect();
    UplinkMessage {
        dim: 20,
        samples: Matrix::from_col_major(20, 9, data).expect("well-formed matrix"),
    }
}

#[test]
fn uplink_message_round_trips_through_a_frame() {
    let msg = uplink_fixture();
    let frame = Frame {
        kind: FrameKind::Uplink,
        flags: 0,
        device: 5,
        seq: 1,
        payload: msg.encode(),
    };
    let wire = frame.encode();
    let back = Frame::decode(wire.as_slice()).expect("frame decodes");
    assert_eq!(back.kind, FrameKind::Uplink);
    assert_eq!(back.device, 5);
    let decoded = UplinkMessage::decode(back.payload).expect("payload decodes");
    assert_eq!(decoded.dim, msg.dim);
    assert_eq!(decoded.samples.as_slice(), msg.samples.as_slice());
}

#[test]
fn downlink_message_round_trips_through_a_frame() {
    let msg = DownlinkMessage {
        assignments: (0..37).map(|i| i % 3).collect(),
    };
    let frame = Frame {
        kind: FrameKind::Downlink,
        flags: 0,
        device: 2,
        seq: 1,
        payload: msg.encode(),
    };
    let back = Frame::decode(frame.encode().as_slice()).expect("frame decodes");
    let decoded = DownlinkMessage::decode(back.payload).expect("payload decodes");
    assert_eq!(decoded.assignments, msg.assignments);
}

#[test]
fn messages_round_trip_through_reader_and_writer() {
    let up = Frame {
        kind: FrameKind::Uplink,
        flags: 0,
        device: 0,
        seq: 1,
        payload: uplink_fixture().encode(),
    };
    let down = Frame {
        kind: FrameKind::Downlink,
        flags: 0,
        device: 0,
        seq: 2,
        payload: DownlinkMessage {
            assignments: vec![2, 0, 1],
        }
        .encode(),
    };
    let mut buf: Vec<u8> = Vec::new();
    write_frame(&mut buf, &up).expect("write uplink");
    write_frame(&mut buf, &down).expect("write downlink");
    let mut cursor = std::io::Cursor::new(buf);
    let (a, _) = read_frame(&mut cursor).expect("read uplink");
    let (b, _) = read_frame(&mut cursor).expect("read downlink");
    assert_eq!(a, up);
    assert_eq!(b, down);
}

#[test]
fn crc_detects_every_single_bit_flip_of_a_real_uplink() {
    let frame = Frame {
        kind: FrameKind::Uplink,
        flags: 0,
        device: 3,
        seq: 7,
        payload: uplink_fixture().encode(),
    };
    let clean = frame.encode().to_vec();
    for bit in 0..clean.len() * 8 {
        let mut dirty = clean.clone();
        dirty[bit / 8] ^= 1 << (bit % 8);
        assert!(
            Frame::decode(&dirty).is_err(),
            "bit flip at {bit} went undetected"
        );
    }
}

#[test]
fn truncation_of_a_real_uplink_errors_at_every_cut() {
    let frame = Frame {
        kind: FrameKind::Uplink,
        flags: 0,
        device: 1,
        seq: 1,
        payload: uplink_fixture().encode(),
    };
    let clean = frame.encode().to_vec();
    for cut in 0..clean.len() {
        assert!(
            Frame::decode(&clean[..cut]).is_err(),
            "truncation to {cut} bytes went undetected"
        );
    }
}

#[test]
fn truncated_streams_error_through_the_reader_too() {
    let frame = Frame {
        kind: FrameKind::Downlink,
        flags: 0,
        device: 0,
        seq: 1,
        payload: Bytes::from(vec![1u8; 64]),
    };
    let clean = frame.encode().to_vec();
    // Cut inside the header and inside the payload.
    for cut in [3, HEADER_LEN - 1, HEADER_LEN + 10, clean.len() - 1] {
        let mut cursor = std::io::Cursor::new(clean[..cut].to_vec());
        assert!(
            read_frame(&mut cursor).is_err(),
            "reader accepted a stream cut to {cut} bytes"
        );
    }
}

#[test]
fn adversarial_garbage_never_panics() {
    // Deterministic pseudo-garbage: decode must return Err (or, for the
    // vanishing chance a blob validates, Ok) without ever panicking.
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in 0..256 {
        let blob: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        let _ = Frame::decode(&blob);
        let mut cursor = std::io::Cursor::new(blob);
        let _ = read_frame(&mut cursor);
    }
}
