//! Real TCP links over `std::net`.
//!
//! Topology: the server binds one listener; every device opens its own
//! connection, handshakes (`Hello` → `HelloAck`, which pins the protocol
//! version on both ends), then sends its single uplink frame. The server
//! keeps the accepted socket around to answer with the downlink frame.
//!
//! Reliability posture:
//!
//! * **Every blocking socket read and write is armed with a timeout**
//!   (`set_read_timeout` / `set_write_timeout`); nothing can hang a round
//!   forever. `cargo xtask check` enforces this for any file touching
//!   `TcpStream`.
//! * A device's `send_uplink` is **atomic per attempt**: it dials a fresh
//!   connection, handshakes, and uploads. Any failure tears the attempt
//!   down and surfaces a (usually transient) error, so the caller's
//!   [`with_retry`](crate::with_retry) budget re-runs the whole exchange —
//!   there is no half-handshaken state to resume.
//! * Byte accounting is *wire-true*: framing headers and handshake frames
//!   count, matching what a packet capture would show.
//!
//! The accept loop runs on its own thread (non-blocking listener polled
//! against a shutdown flag), and each accepted connection is handshaken on
//! a short-lived handler thread so one slow client cannot starve the
//! others. Completed uplinks funnel into a channel the server endpoint
//! drains from `recv_uplink`.

use crate::error::{io_error, Result, TransportError};
use crate::frame::{read_frame, write_frame, Frame, FrameKind, FLAG_TIMED};
use crate::timing::{with_retry, Deadline};
use crate::{DeviceTransport, LinkStats, ServerTransport, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Socket-level knobs shared by both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpOptions {
    /// Read/write timeout armed on every socket operation.
    pub io_timeout: Duration,
    /// Budget for one `connect` attempt.
    pub connect_timeout: Duration,
    /// Extra connect attempts before a device gives up dialing.
    pub connect_retries: u32,
    /// Initial backoff between connect attempts (doubles per retry).
    pub connect_backoff: Duration,
    /// How often the acceptor polls the non-blocking listener.
    pub accept_poll: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            io_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(5),
            connect_retries: 10,
            connect_backoff: Duration::from_millis(20),
            accept_poll: Duration::from_millis(2),
        }
    }
}

/// Factory for loopback/LAN TCP links.
#[derive(Debug, Clone, Copy)]
pub struct TcpTransport {
    /// Address the server binds (port 0 picks a free port).
    pub addr: SocketAddr,
    /// Socket knobs applied to every endpoint.
    pub opts: TcpOptions,
}

impl TcpTransport {
    /// A transport binding an ephemeral loopback port.
    pub fn loopback() -> Self {
        TcpTransport {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            opts: TcpOptions::default(),
        }
    }
}

impl Transport for TcpTransport {
    type Server = TcpServer;
    type Device = TcpDevice;

    fn open(&self, devices: usize) -> Result<(TcpServer, Vec<TcpDevice>)> {
        let server = TcpServer::bind(self.addr, self.opts)?;
        let addr = server.local_addr();
        let endpoints = (0..devices)
            .map(|z| TcpDevice::new(addr, z, self.opts))
            .collect();
        Ok((server, endpoints))
    }
}

/// A completed uplink exchange handed from a handler thread to the server
/// endpoint: the payload plus the live socket for the downlink answer.
struct Inbound {
    device: usize,
    payload: Bytes,
    stream: TcpStream,
    bytes_in: usize,
    bytes_out: usize,
}

/// Server endpoint: listener + acceptor thread + per-connection handlers.
pub struct TcpServer {
    local_addr: SocketAddr,
    inbound_rx: Receiver<Inbound>,
    // Held so `recv_uplink` observes Timeout (retryable by policy) rather
    // than Disconnected once all handler threads exit.
    _inbound_tx: Sender<Inbound>,
    conns: BTreeMap<usize, TcpStream>,
    stats: LinkStats,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpServer {
    /// Binds `addr` and starts accepting device connections.
    pub fn bind(addr: SocketAddr, opts: TcpOptions) -> Result<TcpServer> {
        let listener = TcpListener::bind(addr).map_err(|e| io_error("bind", &e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| io_error("local_addr", &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_error("set_nonblocking", &e))?;
        let (inbound_tx, inbound_rx) = unbounded::<Inbound>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let tx = inbound_tx.clone();
            let stop = Arc::clone(&shutdown);
            let pool = Arc::clone(&handlers);
            std::thread::spawn(move || accept_loop(listener, tx, stop, pool, opts))
        };
        Ok(TcpServer {
            local_addr,
            inbound_rx,
            _inbound_tx: inbound_tx,
            conns: BTreeMap::new(),
            stats: LinkStats::default(),
            shutdown,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The address devices should dial (resolved even when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<Inbound>,
    stop: Arc<AtomicBool>,
    pool: Arc<Mutex<Vec<JoinHandle<()>>>>,
    opts: TcpOptions,
) {
    // ORDERING: Relaxed — `stop` is a standalone shutdown flag with no
    // associated data to publish; the loop only needs eventual visibility,
    // and the unblocking connect in `Drop` guarantees a fresh iteration.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let handle = std::thread::spawn(move || {
                    // A connection that fails to handshake or upload is
                    // simply dropped; the device side sees the error and
                    // retries with a fresh connection.
                    let _ = serve_connection(stream, &tx, opts);
                });
                push_handle(&pool, handle);
            }
            // Non-blocking listener with nothing pending (or a transient
            // accept hiccup): back off briefly and poll again.
            Err(_) => std::thread::sleep(opts.accept_poll),
        }
    }
}

fn push_handle(pool: &Arc<Mutex<Vec<JoinHandle<()>>>>, handle: JoinHandle<()>) {
    match pool.lock() {
        Ok(mut g) => g.push(handle),
        Err(poisoned) => poisoned.into_inner().push(handle),
    }
}

/// Runs the server side of one connection: `Hello` → `HelloAck`, then one
/// `Uplink` frame, then hands the live socket to the endpoint for the
/// downlink answer.
fn serve_connection(mut stream: TcpStream, tx: &Sender<Inbound>, opts: TcpOptions) -> Result<()> {
    stream
        .set_read_timeout(Some(opts.io_timeout))
        .map_err(|e| io_error("arm read timeout", &e))?;
    stream
        .set_write_timeout(Some(opts.io_timeout))
        .map_err(|e| io_error("arm write timeout", &e))?;
    let (hello, n_hello) = read_frame(&mut stream)?;
    let t1 = fedsc_obs::now_ns(); // receive timestamp for a timed handshake
    if hello.kind != FrameKind::Hello {
        return Err(TransportError::Malformed("expected hello frame"));
    }
    let device = usize::try_from(hello.device)
        .map_err(|_| TransportError::Malformed("device id out of range"))?;
    // A timed Hello asks for our receive/transmit timestamps in the ack
    // so the device can run the midpoint clock-offset estimator.
    let ack = if hello.flags & FLAG_TIMED != 0 {
        let mut ts = Vec::with_capacity(16);
        ts.extend_from_slice(&t1.to_le_bytes());
        ts.extend_from_slice(&fedsc_obs::now_ns().to_le_bytes()); // t2: transmit
        Frame {
            kind: FrameKind::HelloAck,
            flags: FLAG_TIMED,
            device: hello.device,
            seq: 0,
            payload: Bytes::from(ts),
        }
    } else {
        Frame::control(FrameKind::HelloAck, hello.device)
    };
    let n_ack = write_frame(&mut stream, &ack)?;
    let (up, n_up) = read_frame(&mut stream)?;
    if up.kind != FrameKind::Uplink || up.device != hello.device {
        return Err(TransportError::Malformed("expected uplink frame"));
    }
    let _ = tx.send(Inbound {
        device,
        payload: up.payload,
        stream,
        bytes_in: n_hello + n_up,
        bytes_out: n_ack,
    });
    Ok(())
}

impl ServerTransport for TcpServer {
    fn recv_uplink(&mut self, timeout: Duration) -> Result<(usize, Bytes)> {
        let inbound = self.inbound_rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout("uplink recv"),
            RecvTimeoutError::Disconnected => TransportError::Closed("acceptor gone"),
        })?;
        self.stats.on_bytes_received(inbound.bytes_in);
        self.stats.on_bytes_sent(inbound.bytes_out);
        self.stats.on_msg_received();
        crate::metrics::TCP_BYTES_RECEIVED.add(inbound.bytes_in as u64);
        crate::metrics::TCP_BYTES_SENT.add(inbound.bytes_out as u64);
        // A device retrying its round reconnects; the latest socket wins.
        self.conns.insert(inbound.device, inbound.stream);
        Ok((inbound.device, inbound.payload))
    }

    fn send_downlink(&mut self, device: usize, payload: &Bytes) -> Result<()> {
        let stream = self
            .conns
            .get_mut(&device)
            .ok_or(TransportError::Closed("device never completed an uplink"))?;
        let frame = Frame {
            kind: FrameKind::Downlink,
            flags: 0,
            device: device as u64,
            seq: self.stats.messages_sent + 1,
            payload: payload.clone(),
        };
        let n = write_frame(stream, &frame)?;
        self.stats.on_bytes_sent(n);
        self.stats.on_msg_sent();
        crate::metrics::TCP_BYTES_SENT.add(n as u64);
        Ok(())
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        // ORDERING: Relaxed — standalone flag, no data published through
        // it; the `join` below is the real synchronization point.
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles = match self.handlers.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for h in handles {
            let _ = h.join();
        }
        // `conns` drops here, closing every accepted socket — devices still
        // blocked in `recv_downlink` (e.g. excluded stragglers) observe EOF
        // instead of hanging.
    }
}

/// Device endpoint: dials the server lazily inside `send_uplink`.
pub struct TcpDevice {
    device: usize,
    addr: SocketAddr,
    opts: TcpOptions,
    stream: Option<TcpStream>,
    stats: LinkStats,
}

impl TcpDevice {
    /// An endpoint that will speak as device `device` to `addr`.
    pub fn new(addr: SocketAddr, device: usize, opts: TcpOptions) -> Self {
        TcpDevice {
            device,
            addr,
            opts,
            stream: None,
            stats: LinkStats::default(),
        }
    }

    fn connect(&self) -> Result<TcpStream> {
        with_retry(self.opts.connect_retries, self.opts.connect_backoff, || {
            TcpStream::connect_timeout(&self.addr, self.opts.connect_timeout)
                .map_err(|e| io_error("connect", &e))
        })
    }

    /// Dials and handshakes, returning the live stream plus the byte
    /// counts of the exchange. A timed handshake (`FLAG_TIMED`) also
    /// returns the midpoint clock-offset estimate.
    fn handshake(&self, timed: bool) -> Result<(TcpStream, usize, usize, i64)> {
        let mut stream = self.connect()?;
        let _ = stream.set_nodelay(true); // latency hint; correctness never depends on it
        stream
            .set_read_timeout(Some(self.opts.io_timeout))
            .map_err(|e| io_error("arm read timeout", &e))?;
        stream
            .set_write_timeout(Some(self.opts.io_timeout))
            .map_err(|e| io_error("arm write timeout", &e))?;
        let id = self.device as u64;
        let hello =
            Frame::control(FrameKind::Hello, id).with_flags(if timed { FLAG_TIMED } else { 0 });
        let t0 = fedsc_obs::now_ns();
        let sent = write_frame(&mut stream, &hello)?;
        let (ack, n_ack) = read_frame(&mut stream)?;
        let t3 = fedsc_obs::now_ns();
        if ack.kind != FrameKind::HelloAck || ack.device != id {
            return Err(TransportError::Malformed("bad handshake ack"));
        }
        let mut offset = 0i64;
        if timed {
            if ack.flags & FLAG_TIMED == 0 || ack.payload.len() != 16 {
                return Err(TransportError::Malformed("peer did not time the handshake"));
            }
            let le64 = |at: usize| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&ack.payload.as_slice()[at..at + 8]);
                u64::from_le_bytes(b)
            };
            let (t1, t2) = (le64(0) as i128, le64(8) as i128);
            // NTP midpoint estimator: server_time ≈ device_time + offset,
            // assuming symmetric network delay; the worst-case error is
            // half the handshake round-trip time.
            offset = (((t1 - t0 as i128) + (t2 - t3 as i128)) / 2) as i64;
        }
        Ok((stream, sent, n_ack, offset))
    }

    fn upload(&mut self, stream: &mut TcpStream, payload: &Bytes) -> Result<usize> {
        write_frame(
            stream,
            &Frame {
                kind: FrameKind::Uplink,
                flags: 0,
                device: self.device as u64,
                seq: self.stats.messages_sent + 1,
                payload: payload.clone(),
            },
        )
    }
}

impl DeviceTransport for TcpDevice {
    fn send_uplink(&mut self, payload: &Bytes) -> Result<()> {
        // A connection kept by `clock_sync` is already handshaken: reuse
        // it for the upload. Any failure clears it, so the caller's retry
        // re-runs a full fresh attempt.
        if let Some(mut stream) = self.stream.take() {
            match self.upload(&mut stream, payload) {
                Ok(sent) => {
                    self.stats.on_bytes_sent(sent);
                    self.stats.on_msg_sent();
                    crate::metrics::TCP_BYTES_SENT.add(sent as u64);
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(_) => {
                    // Fall through to a fresh connection + handshake.
                }
            }
        }
        // One attempt = one fresh connection + handshake + upload; any
        // failure tears the attempt down (no half-handshaken state).
        let (mut stream, mut sent, n_ack, _) = self.handshake(false)?;
        sent += self.upload(&mut stream, payload)?;
        self.stats.on_bytes_sent(sent);
        self.stats.on_bytes_received(n_ack);
        self.stats.on_msg_sent();
        crate::metrics::TCP_BYTES_SENT.add(sent as u64);
        crate::metrics::TCP_BYTES_RECEIVED.add(n_ack as u64);
        self.stream = Some(stream);
        Ok(())
    }

    fn clock_sync(&mut self) -> Result<i64> {
        // Tear down any previous attempt, then dial with a timed Hello;
        // the connection is kept for the subsequent `send_uplink`, which
        // skips its own handshake.
        self.stream = None;
        let (stream, sent, n_ack, offset) = self.handshake(true)?;
        self.stats.on_bytes_sent(sent);
        self.stats.on_bytes_received(n_ack);
        crate::metrics::TCP_BYTES_SENT.add(sent as u64);
        crate::metrics::TCP_BYTES_RECEIVED.add(n_ack as u64);
        self.stream = Some(stream);
        Ok(offset)
    }

    fn recv_downlink(&mut self, timeout: Duration) -> Result<Bytes> {
        let stream = self
            .stream
            .as_mut()
            .ok_or(TransportError::Closed("uplink was never delivered"))?;
        let deadline = Deadline::after(timeout);
        loop {
            let remaining = deadline.remaining();
            if remaining.is_zero() {
                return Err(TransportError::Timeout("downlink recv"));
            }
            // Re-arm per iteration so the overall wait honours `timeout`
            // even when it exceeds the per-operation socket budget.
            stream
                .set_read_timeout(Some(remaining.min(self.opts.io_timeout)))
                .map_err(|e| io_error("arm read timeout", &e))?;
            match read_frame(stream) {
                Ok((f, n)) => {
                    self.stats.on_bytes_received(n);
                    crate::metrics::TCP_BYTES_RECEIVED.add(n as u64);
                    if f.kind == FrameKind::Downlink && f.device == self.device as u64 {
                        self.stats.on_msg_received();
                        return Ok(f.payload);
                    }
                    // Stray frame (e.g. duplicate ack): keep waiting.
                }
                Err(TransportError::Timeout(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::HEADER_LEN;

    fn fast_opts() -> TcpOptions {
        TcpOptions {
            io_timeout: Duration::from_millis(500),
            connect_timeout: Duration::from_millis(500),
            connect_retries: 3,
            connect_backoff: Duration::from_millis(5),
            accept_poll: Duration::from_millis(1),
        }
    }

    #[test]
    fn loopback_round_trip_with_wire_true_accounting() {
        let t = TcpTransport {
            opts: fast_opts(),
            ..TcpTransport::loopback()
        };
        let (mut srv, mut devs) = t.open(3).expect("open");
        for d in devs.iter_mut() {
            let fill = d.device as u8;
            d.send_uplink(&Bytes::from(vec![fill; 50])).expect("uplink");
        }
        let mut seen = [false; 3];
        for _ in 0..3 {
            let (z, p) = srv.recv_uplink(Duration::from_secs(5)).expect("recv");
            assert_eq!(p.as_slice(), &[z as u8; 50]);
            seen[z] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for z in 0..3 {
            srv.send_downlink(z, &Bytes::from(vec![z as u8; 8]))
                .expect("downlink");
        }
        for d in devs.iter_mut() {
            let got = d.recv_downlink(Duration::from_secs(5)).expect("reply");
            assert_eq!(got.as_slice(), &[d.device as u8; 8]);
            // Wire-true accounting: hello + uplink out, ack + downlink in.
            assert_eq!(d.stats().bytes_sent, 2 * HEADER_LEN + 50);
            assert_eq!(d.stats().bytes_received, 2 * HEADER_LEN + 8);
        }
        assert_eq!(srv.stats().bytes_received, 3 * (2 * HEADER_LEN + 50));
        assert_eq!(srv.stats().bytes_sent, 3 * (2 * HEADER_LEN + 8));
    }

    #[test]
    fn clock_sync_estimates_near_zero_offset_in_process() {
        // Both ends share one process trace epoch, so the true offset is
        // 0; the estimate is bounded by half the loopback RTT.
        let t = TcpTransport {
            opts: fast_opts(),
            ..TcpTransport::loopback()
        };
        let (mut srv, mut devs) = t.open(1).expect("open");
        let offset = devs[0].clock_sync().expect("timed handshake");
        assert!(
            offset.abs() < 100_000_000,
            "loopback offset {offset} ns is implausible"
        );
        // The synced connection is reused: one upload, no second handshake.
        devs[0]
            .send_uplink(&Bytes::from(vec![3; 40]))
            .expect("uplink");
        let (z, p) = srv.recv_uplink(Duration::from_secs(5)).expect("recv");
        assert_eq!((z, p.len()), (0, 40));
        srv.send_downlink(0, &Bytes::from(vec![1; 4]))
            .expect("downlink");
        let got = devs[0]
            .recv_downlink(Duration::from_secs(5))
            .expect("reply");
        assert_eq!(got.len(), 4);
        // Accounting: hello + uplink out; the timed ack carries 16 extra
        // payload bytes versus the plain handshake.
        assert_eq!(devs[0].stats().bytes_sent, 2 * HEADER_LEN + 40);
        assert_eq!(devs[0].stats().bytes_received, 2 * HEADER_LEN + 16 + 4);
        assert_eq!(srv.stats().bytes_received, 2 * HEADER_LEN + 40);
        assert_eq!(srv.stats().bytes_sent, 2 * HEADER_LEN + 16 + 4);
    }

    #[test]
    fn send_uplink_after_failed_sync_connection_recovers_fresh() {
        let t = TcpTransport {
            opts: fast_opts(),
            ..TcpTransport::loopback()
        };
        let (srv, mut devs) = t.open(1).expect("open");
        let _ = devs[0].clock_sync().expect("timed handshake");
        // Kill the synced connection from the server side: dropping the
        // server closes every accepted socket. Rebind a fresh server on
        // the same address for the fallback path to dial.
        let addr = srv.local_addr();
        drop(srv);
        let mut srv = TcpServer::bind(addr, fast_opts()).expect("rebind");
        // A payload larger than the socket buffer cannot be swallowed by
        // the dead connection: the reuse write deterministically errors
        // and the fresh-attempt fallback must deliver the whole upload.
        let big = 8 << 20;
        devs[0]
            .send_uplink(&Bytes::from(vec![9; big]))
            .expect("reuse fails, fresh attempt succeeds");
        let (z, p) = srv.recv_uplink(Duration::from_secs(5)).expect("recv");
        assert_eq!((z, p.len()), (0, big));
    }

    #[test]
    fn recv_uplink_times_out_without_clients() {
        let t = TcpTransport {
            opts: fast_opts(),
            ..TcpTransport::loopback()
        };
        let (mut srv, _devs) = t.open(1).expect("open");
        assert_eq!(
            srv.recv_uplink(Duration::from_millis(30)).err(),
            Some(TransportError::Timeout("uplink recv"))
        );
    }

    #[test]
    fn connect_to_dead_port_exhausts_retries() {
        // Bind then immediately drop a listener to get a port that refuses.
        let dead = TcpListener::bind("127.0.0.1:0")
            .and_then(|l| l.local_addr())
            .expect("probe port");
        let mut dev = TcpDevice::new(dead, 0, fast_opts());
        let err = dev
            .send_uplink(&Bytes::from(vec![1; 4]))
            .expect_err("nobody listening");
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn dropping_server_unblocks_waiting_device() {
        let t = TcpTransport {
            opts: fast_opts(),
            ..TcpTransport::loopback()
        };
        let (mut srv, mut devs) = t.open(1).expect("open");
        devs[0]
            .send_uplink(&Bytes::from(vec![5; 10]))
            .expect("uplink");
        let _ = srv.recv_uplink(Duration::from_secs(5)).expect("recv");
        drop(srv); // closes the accepted socket without answering
        let err = devs[0]
            .recv_downlink(Duration::from_secs(5))
            .expect_err("server gone");
        assert!(
            matches!(err, TransportError::Io { .. } | TransportError::Closed(_)),
            "{err}"
        );
    }

    #[test]
    fn recv_downlink_before_uplink_is_an_error() {
        let t = TcpTransport {
            opts: fast_opts(),
            ..TcpTransport::loopback()
        };
        let (_srv, mut devs) = t.open(1).expect("open");
        assert!(matches!(
            devs[0].recv_downlink(Duration::from_millis(10)),
            Err(TransportError::Closed(_))
        ));
    }
}
