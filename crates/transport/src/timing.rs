//! Deadline and retry primitives.
//!
//! This is the transport crate's **only** module allowed to observe the
//! wall clock (`cargo xtask check` pins `Instant::now` to this file), so
//! deadline arithmetic stays out of the protocol code: callers hold a
//! [`Deadline`] and ask it for the remaining budget.

use crate::error::Result;
use std::time::{Duration, Instant};

/// A fixed point in the future against which receive budgets are measured.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    end: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            end: Instant::now() + budget,
        }
    }

    /// Time left before the deadline (zero once passed).
    pub fn remaining(&self) -> Duration {
        self.end.saturating_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }
}

/// Runs `attempt` up to `1 + max_retries` times, sleeping an exponentially
/// growing backoff (`base`, `2*base`, `4*base`, … capped at one second)
/// between tries. Only [transient](crate::TransportError::is_transient)
/// errors are retried; terminal errors — and the last transient error once
/// the budget is exhausted — are returned as-is.
pub fn with_retry<T>(
    max_retries: u32,
    base: Duration,
    mut attempt: impl FnMut() -> Result<T>,
) -> Result<T> {
    let cap = Duration::from_secs(1);
    let mut backoff = base;
    let mut tries = 0;
    loop {
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && tries < max_retries => {
                tries += 1;
                crate::metrics::RETRIES.inc();
                if !backoff.is_zero() {
                    std::thread::sleep(backoff.min(cap));
                }
                backoff = backoff.saturating_mul(2);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TransportError;

    #[test]
    fn deadline_counts_down() {
        let d = Deadline::after(Duration::from_millis(200));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_millis(200));
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn retry_succeeds_within_budget() {
        let mut calls = 0;
        let out = with_retry(3, Duration::ZERO, || {
            calls += 1;
            if calls < 3 {
                Err(TransportError::Dropped)
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
    }

    #[test]
    fn retry_budget_exhausts() {
        let mut calls = 0;
        let out: Result<()> = with_retry(2, Duration::ZERO, || {
            calls += 1;
            Err(TransportError::Dropped)
        });
        assert_eq!(out, Err(TransportError::Dropped));
        assert_eq!(calls, 3); // 1 attempt + 2 retries
    }

    #[test]
    fn terminal_errors_are_not_retried() {
        let mut calls = 0;
        let out: Result<()> = with_retry(5, Duration::ZERO, || {
            calls += 1;
            Err(TransportError::VersionMismatch { ours: 1, theirs: 2 })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }
}
