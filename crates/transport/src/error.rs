//! Transport error taxonomy.
//!
//! Every failure mode of a device↔server link is a variant here, and each
//! one is classified as *transient* (worth a bounded retry: the message was
//! lost or mangled in flight) or *terminal* (retrying cannot help: the peer
//! speaks a different protocol version, or the link is gone for good).

use std::fmt;

/// Errors produced by transports, frames, and link endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer (or every peer) disconnected; no more messages can flow.
    Closed(&'static str),
    /// No message arrived within the allotted time.
    Timeout(&'static str),
    /// The frame does not start with the protocol magic.
    BadMagic,
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version this endpoint implements.
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// The frame checksum does not match its contents.
    ChecksumMismatch {
        /// CRC32 recorded in the frame header.
        expected: u32,
        /// CRC32 recomputed over the received bytes.
        got: u32,
    },
    /// The frame ended before its declared length.
    Truncated {
        /// Bytes the header promised.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The frame header is structurally invalid (unknown kind, nonzero
    /// reserved flags, ...).
    Malformed(&'static str),
    /// The declared payload exceeds the protocol bound.
    Oversize {
        /// Declared payload length.
        len: usize,
    },
    /// The (simulated) link lost the message in flight.
    Dropped,
    /// An OS-level socket operation failed.
    Io {
        /// The operation that failed (`"connect"`, `"read frame"`, ...).
        op: &'static str,
        /// The underlying I/O error kind.
        kind: std::io::ErrorKind,
    },
}

impl TransportError {
    /// Whether a bounded retry has a chance of succeeding: lost or mangled
    /// messages are transient, protocol or permanent-link failures are not.
    pub fn is_transient(&self) -> bool {
        match self {
            TransportError::Dropped
            | TransportError::ChecksumMismatch { .. }
            | TransportError::Truncated { .. }
            | TransportError::BadMagic => true,
            TransportError::Io { kind, .. } => matches!(
                kind,
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::NotConnected
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::UnexpectedEof
            ),
            TransportError::Closed(_)
            | TransportError::Timeout(_)
            | TransportError::VersionMismatch { .. }
            | TransportError::Malformed(_)
            | TransportError::Oversize { .. } => false,
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed(ctx) => write!(f, "link closed: {ctx}"),
            TransportError::Timeout(ctx) => write!(f, "timed out: {ctx}"),
            TransportError::BadMagic => write!(f, "frame does not start with the protocol magic"),
            TransportError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            TransportError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#010x}, computed {got:#010x}"
                )
            }
            TransportError::Truncated { needed, got } => {
                write!(f, "frame truncated: needed {needed} bytes, got {got}")
            }
            TransportError::Malformed(ctx) => write!(f, "malformed frame: {ctx}"),
            TransportError::Oversize { len } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the protocol bound"
                )
            }
            TransportError::Dropped => write!(f, "message dropped in flight"),
            TransportError::Io { op, kind } => write!(f, "socket {op} failed: {kind}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TransportError>;

/// Maps an OS I/O error to [`TransportError`], folding read/write timeouts
/// (`WouldBlock` on Unix, `TimedOut` on Windows) into [`TransportError::Timeout`].
pub fn io_error(op: &'static str, e: &std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            TransportError::Timeout(op)
        }
        kind => TransportError::Io { op, kind },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(TransportError::Dropped.is_transient());
        assert!(TransportError::ChecksumMismatch {
            expected: 1,
            got: 2
        }
        .is_transient());
        assert!(TransportError::Truncated { needed: 8, got: 3 }.is_transient());
        assert!(TransportError::Io {
            op: "connect",
            kind: std::io::ErrorKind::ConnectionRefused
        }
        .is_transient());
        assert!(!TransportError::VersionMismatch { ours: 1, theirs: 2 }.is_transient());
        assert!(!TransportError::Closed("gone").is_transient());
        assert!(!TransportError::Timeout("recv").is_transient());
    }

    #[test]
    fn io_error_folds_timeouts() {
        let e = std::io::Error::new(std::io::ErrorKind::WouldBlock, "t");
        assert_eq!(
            io_error("read frame", &e),
            TransportError::Timeout("read frame")
        );
        let e = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "r");
        assert_eq!(
            io_error("read frame", &e),
            TransportError::Io {
                op: "read frame",
                kind: std::io::ErrorKind::ConnectionReset
            }
        );
    }

    #[test]
    fn display_is_informative() {
        let s = format!(
            "{}",
            TransportError::ChecksumMismatch {
                expected: 0xdead_beef,
                got: 1
            }
        );
        assert!(s.contains("0xdeadbeef"), "{s}");
    }
}
