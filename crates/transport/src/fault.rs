//! Seeded, deterministic fault injection over in-process links.
//!
//! Wraps the in-memory channel wiring with a per-link fault plan: every
//! directed link (device `z` uplink; server→`z` downlink) owns its own
//! seeded RNG and attempt counter, and is driven by exactly one thread, so
//! the sequence of fault decisions — and therefore the transcript of what
//! the link did — is byte-identical across runs and thread counts.
//!
//! Messages travel as encoded [`Frame`]s. Per send attempt the link may,
//! at the configured rates and in this fixed order:
//!
//! 1. **delay** — sleep up to `max_delay` before transmitting (wall-clock
//!    only; interacts with the round's straggler deadline, never with the
//!    transcript),
//! 2. **drop** — lose the message; the sender sees
//!    [`TransportError::Dropped`],
//! 3. **truncate** — cut the frame short,
//! 4. **bit-flip** — flip one random bit anywhere in the frame,
//! 5. **duplicate** — deliver the frame twice,
//! 6. **reorder** — hold the frame back and release it behind the *next*
//!    transmission on the link (held frames flush when the endpoint
//!    drops, so nothing is silently lost).
//!
//! Truncation and bit flips are always caught by the frame CRC (the
//! checksum covers header and payload; see [`crate::frame`]), so a
//! detected-corrupt attempt is surfaced to the *sender* as an immediate
//! `Err` — the zero-latency model of a receiver rejecting the frame and
//! NACKing. That keeps retransmission where it lives in the real
//! protocol: in the sender's bounded retry budget
//! ([`crate::with_retry`]).

use crate::error::{Result, TransportError};
use crate::frame::{Frame, FrameKind};
use crate::timing::Deadline;
use crate::{DeviceTransport, LinkStats, ServerTransport, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-message fault rates (each in `[0, 1]`) plus the link seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Base seed; each directed link derives an independent stream.
    pub seed: u64,
    /// Probability a message is lost in flight.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is held back and released behind the next one.
    pub reorder: f64,
    /// Probability one random bit of the frame is flipped.
    pub bit_flip: f64,
    /// Probability the frame is cut short.
    pub truncate: f64,
    /// Probability the message is delayed before transmission.
    pub delay: f64,
    /// Upper bound on the injected delay.
    pub max_delay: Duration,
}

impl Default for FaultConfig {
    /// A clean link: all rates zero.
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            bit_flip: 0.0,
            truncate: 0.0,
            delay: 0.0,
            max_delay: Duration::ZERO,
        }
    }
}

/// Shared, per-link event log. Keyed by `(direction, device)` with
/// direction 0 = uplink, 1 = downlink; each link's events are appended by
/// the single thread driving it, so per-link order is deterministic and
/// the serialized transcript sorts links by key.
type Transcript = Arc<Mutex<BTreeMap<(u8, usize), Vec<String>>>>;

const DIR_UP: u8 = 0;
const DIR_DOWN: u8 = 1;

/// Factory for fault-injecting in-process links.
#[derive(Debug, Clone)]
pub struct FaultyInMemoryTransport {
    /// The fault plan applied to every link.
    pub fault: FaultConfig,
    transcript: Transcript,
}

impl FaultyInMemoryTransport {
    /// A transport applying `fault` to every message.
    pub fn new(fault: FaultConfig) -> Self {
        FaultyInMemoryTransport {
            fault,
            transcript: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Serializes the fault transcript: one line per send attempt, grouped
    /// by link, links sorted `up[0], up[1], …, down[0], …`. Byte-identical
    /// across runs with the same seed and fault plan.
    pub fn transcript(&self) -> String {
        let map = lock_transcript(&self.transcript);
        let mut out = String::new();
        for dir in [DIR_UP, DIR_DOWN] {
            for ((d, z), lines) in map.iter().filter(|((d, _), _)| *d == dir) {
                let name = if *d == DIR_UP { "up" } else { "down" };
                for line in lines {
                    out.push_str(&format!("{name}[{z}] {line}\n"));
                }
            }
        }
        out
    }
}

fn lock_transcript(
    t: &Transcript,
) -> std::sync::MutexGuard<'_, BTreeMap<(u8, usize), Vec<String>>> {
    // A panicking link holder is already a round-level failure; the log
    // itself is always in a consistent state between pushes.
    match t.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One directed link's fault state.
struct FaultLink {
    dir: u8,
    device: usize,
    cfg: FaultConfig,
    rng: StdRng,
    attempt: u64,
    /// Frames held back by a reorder fault, released behind the next
    /// transmission (or on endpoint drop).
    stash: Vec<Bytes>,
    log: Transcript,
}

impl FaultLink {
    fn new(cfg: FaultConfig, dir: u8, device: usize, log: Transcript) -> Self {
        // Independent stream per directed link: splitmix-style mixing of
        // (seed, direction, device) so neighbouring links decorrelate.
        let salt = (device as u64)
            .wrapping_mul(0xD1B5_4A32_D192_ED03)
            .wrapping_add((dir as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultLink {
            dir,
            device,
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed ^ salt),
            attempt: 0,
            stash: Vec::new(),
            log,
        }
    }

    fn record(&self, line: String) {
        lock_transcript(&self.log)
            .entry((self.dir, self.device))
            .or_default()
            .push(line);
    }

    /// Applies the fault plan to one send attempt of `frame`. Returns the
    /// wire bytes to deliver now (burst plus any released held frames), or
    /// the transient error the sender observes.
    fn transmit(&mut self, frame: &Frame) -> Result<Vec<Bytes>> {
        self.attempt += 1;
        let a = self.attempt;
        let cfg = self.cfg;
        // Fixed draw order: the decision stream depends only on (seed,
        // link, attempt index), never on outcomes or timing.
        let delayed = cfg.delay > 0.0 && self.rng.random_bool(cfg.delay);
        let dropped = cfg.drop > 0.0 && self.rng.random_bool(cfg.drop);
        let truncated = cfg.truncate > 0.0 && self.rng.random_bool(cfg.truncate);
        let flipped = cfg.bit_flip > 0.0 && self.rng.random_bool(cfg.bit_flip);
        let duplicated = cfg.duplicate > 0.0 && self.rng.random_bool(cfg.duplicate);
        let reordered = cfg.reorder > 0.0 && self.rng.random_bool(cfg.reorder);

        if delayed && !cfg.max_delay.is_zero() {
            crate::metrics::FAULT_DELAY.inc();
            let ms = cfg.max_delay.as_millis().min(u64::MAX as u128) as u64;
            let pause = self.rng.random_range(0..ms + 1);
            std::thread::sleep(Duration::from_millis(pause));
        }
        if dropped {
            crate::metrics::FAULT_DROP.inc();
            self.record(format!("#{a} drop"));
            return Err(TransportError::Dropped);
        }

        let clean = frame.encode();
        if truncated {
            let cut = self.rng.random_range(0..clean.len());
            // A strict prefix always fails to decode (length mismatch at
            // best, missing header at worst) — the receiver would reject
            // it, which the sender observes as a NACK.
            let err = Frame::decode(&clean.as_slice()[..cut]).err().unwrap_or(
                TransportError::Truncated {
                    needed: clean.len(),
                    got: cut,
                },
            );
            crate::metrics::FAULT_TRUNCATE.inc();
            self.record(format!("#{a} truncate cut={cut} reject"));
            return Err(err);
        }
        let wire = if flipped {
            crate::metrics::FAULT_BIT_FLIP.inc();
            let bit = self.rng.random_range(0..clean.len() * 8);
            let mut dirty = clean.to_vec();
            dirty[bit / 8] ^= 1 << (bit % 8);
            match Frame::decode(&dirty) {
                Err(err) => {
                    self.record(format!("#{a} bitflip bit={bit} reject"));
                    return Err(err);
                }
                // Unreachable with the full-frame CRC, but if the codec
                // ever weakens, deliver the corruption rather than hide it.
                Ok(_) => {
                    self.record(format!("#{a} bitflip bit={bit} UNDETECTED"));
                    Bytes::from(dirty)
                }
            }
        } else {
            clean
        };

        let mut deliver = vec![wire.clone()];
        if duplicated {
            crate::metrics::FAULT_DUPLICATE.inc();
            deliver.push(wire);
        }
        if reordered && self.stash.is_empty() {
            crate::metrics::FAULT_REORDER.inc();
            self.record(format!("#{a} hold n={}", deliver.len()));
            self.stash = deliver;
            return Ok(Vec::new());
        }
        let released = self.stash.len();
        deliver.append(&mut self.stash);
        let bytes: usize = deliver.iter().map(Bytes::len).sum();
        let crc = crate::frame::crc32(deliver[0].as_slice());
        self.record(format!(
            "#{a} deliver n={} bytes={bytes} crc={crc:08x}{}{}",
            deliver.len(),
            if duplicated { " dup" } else { "" },
            if released > 0 {
                format!(" release={released}")
            } else {
                String::new()
            },
        ));
        Ok(deliver)
    }

    /// Takes any frames still held by a reorder fault (flushed when the
    /// endpoint drops so a held message is late, never lost).
    fn take_stash(&mut self) -> Vec<Bytes> {
        std::mem::take(&mut self.stash)
    }
}

/// Server endpoint over faulty in-process links.
pub struct FaultyServer {
    uplink_rx: Receiver<(usize, Bytes)>,
    downlinks: Vec<(Sender<(usize, Bytes)>, FaultLink)>,
    stats: LinkStats,
}

/// Device endpoint over faulty in-process links.
pub struct FaultyDevice {
    device: usize,
    uplink_tx: Sender<(usize, Bytes)>,
    link: FaultLink,
    downlink_rx: Receiver<(usize, Bytes)>,
    stats: LinkStats,
}

impl Transport for FaultyInMemoryTransport {
    type Server = FaultyServer;
    type Device = FaultyDevice;

    fn open(&self, devices: usize) -> Result<(FaultyServer, Vec<FaultyDevice>)> {
        let (uplink_tx, uplink_rx) = unbounded::<(usize, Bytes)>();
        let mut downlinks = Vec::with_capacity(devices);
        let mut endpoints = Vec::with_capacity(devices);
        for z in 0..devices {
            let (tx, rx) = unbounded::<(usize, Bytes)>();
            downlinks.push((
                tx,
                FaultLink::new(self.fault, DIR_DOWN, z, Arc::clone(&self.transcript)),
            ));
            endpoints.push(FaultyDevice {
                device: z,
                uplink_tx: uplink_tx.clone(),
                link: FaultLink::new(self.fault, DIR_UP, z, Arc::clone(&self.transcript)),
                downlink_rx: rx,
                stats: LinkStats::default(),
            });
        }
        Ok((
            FaultyServer {
                uplink_rx,
                downlinks,
                stats: LinkStats::default(),
            },
            endpoints,
        ))
    }
}

impl DeviceTransport for FaultyDevice {
    fn send_uplink(&mut self, payload: &Bytes) -> Result<()> {
        let frame = Frame {
            kind: FrameKind::Uplink,
            flags: 0,
            device: self.device as u64,
            seq: self.link.attempt + 1,
            payload: payload.clone(),
        };
        let burst = self.link.transmit(&frame)?;
        for (copies_delivered, wire) in burst.into_iter().enumerate() {
            let len = wire.len();
            if self.uplink_tx.send((self.device, wire)).is_err() {
                if copies_delivered > 0 {
                    break; // the peer already has a copy; duplicates are best-effort
                }
                return Err(TransportError::Closed("server endpoint dropped"));
            }
            self.stats.on_bytes_sent(len);
        }
        self.stats.on_msg_sent();
        Ok(())
    }

    fn recv_downlink(&mut self, timeout: Duration) -> Result<Bytes> {
        let deadline = Deadline::after(timeout);
        loop {
            let (_, wire) = self
                .downlink_rx
                .recv_timeout(deadline.remaining())
                .map_err(|e| match e {
                    RecvTimeoutError::Timeout => TransportError::Timeout("downlink recv"),
                    RecvTimeoutError::Disconnected => {
                        TransportError::Closed("server finished without answering this device")
                    }
                })?;
            self.stats.on_bytes_received(wire.len());
            // Duplicates and (vanishingly unlikely) undetected corruption:
            // take the first frame that decodes and is addressed to us.
            match Frame::decode(wire.as_slice()) {
                Ok(f) if f.kind == FrameKind::Downlink && f.device == self.device as u64 => {
                    self.stats.on_msg_received();
                    return Ok(f.payload);
                }
                _ => continue,
            }
        }
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

impl Drop for FaultyDevice {
    fn drop(&mut self) {
        for wire in self.link.take_stash() {
            let _ = self.uplink_tx.send((self.device, wire));
        }
    }
}

impl ServerTransport for FaultyServer {
    fn recv_uplink(&mut self, timeout: Duration) -> Result<(usize, Bytes)> {
        let deadline = Deadline::after(timeout);
        loop {
            let (z, wire) =
                self.uplink_rx
                    .recv_timeout(deadline.remaining())
                    .map_err(|e| match e {
                        RecvTimeoutError::Timeout => TransportError::Timeout("uplink recv"),
                        RecvTimeoutError::Disconnected => {
                            TransportError::Closed("every device endpoint dropped")
                        }
                    })?;
            self.stats.on_bytes_received(wire.len());
            match Frame::decode(wire.as_slice()) {
                Ok(f) if f.kind == FrameKind::Uplink && f.device == z as u64 => {
                    self.stats.on_msg_received();
                    return Ok((z, f.payload));
                }
                _ => continue,
            }
        }
    }

    fn send_downlink(&mut self, device: usize, payload: &Bytes) -> Result<()> {
        let (tx, link) = self
            .downlinks
            .get_mut(device)
            .ok_or(TransportError::Closed("unknown device id"))?;
        let frame = Frame {
            kind: FrameKind::Downlink,
            flags: 0,
            device: device as u64,
            seq: link.attempt + 1,
            payload: payload.clone(),
        };
        let burst = link.transmit(&frame)?;
        for (copies_delivered, wire) in burst.into_iter().enumerate() {
            let len = wire.len();
            if tx.send((device, wire)).is_err() {
                if copies_delivered > 0 {
                    break; // the peer already has a copy; duplicates are best-effort
                }
                return Err(TransportError::Closed("device endpoint dropped"));
            }
            self.stats.on_bytes_sent(len);
        }
        self.stats.on_msg_sent();
        Ok(())
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

impl Drop for FaultyServer {
    fn drop(&mut self) {
        for (tx, link) in self.downlinks.iter_mut() {
            for wire in link.take_stash() {
                let _ = tx.send((0, wire));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_retry;

    fn payload(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn clean_plan_is_lossless() {
        let t = FaultyInMemoryTransport::new(FaultConfig::default());
        let (mut srv, mut devs) = t.open(2).expect("open");
        devs[0].send_uplink(&payload(40, 1)).expect("send");
        devs[1].send_uplink(&payload(40, 2)).expect("send");
        for _ in 0..2 {
            let (z, p) = srv.recv_uplink(Duration::from_secs(1)).expect("recv");
            assert_eq!(p.as_slice()[0], z as u8 + 1);
        }
        srv.send_downlink(0, &payload(8, 9)).expect("down");
        let got = devs[0]
            .recv_downlink(Duration::from_secs(1))
            .expect("reply");
        assert_eq!(got, payload(8, 9));
        // Framed accounting: payload + 32-byte header per frame.
        assert_eq!(srv.stats().bytes_received, 2 * (40 + 32));
        assert_eq!(srv.stats().bytes_sent, 8 + 32);
    }

    #[test]
    fn dropped_messages_surface_and_retry_recovers() {
        let cfg = FaultConfig {
            seed: 7,
            drop: 0.5,
            ..FaultConfig::default()
        };
        let t = FaultyInMemoryTransport::new(cfg);
        let (mut srv, mut devs) = t.open(1).expect("open");
        // With drop = 0.5 and 16 retries, failure probability is 2^-17.
        with_retry(16, Duration::ZERO, || devs[0].send_uplink(&payload(24, 3)))
            .expect("retry budget covers the drops");
        let (z, p) = srv.recv_uplink(Duration::from_secs(1)).expect("arrives");
        assert_eq!((z, p), (0, payload(24, 3)));
        let log = t.transcript();
        assert!(log.contains("deliver"), "{log}");
    }

    #[test]
    fn corruption_is_always_detected() {
        let cfg = FaultConfig {
            seed: 3,
            bit_flip: 1.0,
            ..FaultConfig::default()
        };
        let t = FaultyInMemoryTransport::new(cfg);
        let (_srv, mut devs) = t.open(1).expect("open");
        for _ in 0..50 {
            let e = devs[0].send_uplink(&payload(100, 5)).expect_err("flip");
            assert!(e.is_transient(), "{e}");
        }
        assert!(!t.transcript().contains("UNDETECTED"));
    }

    #[test]
    fn truncation_is_always_detected() {
        let cfg = FaultConfig {
            seed: 4,
            truncate: 1.0,
            ..FaultConfig::default()
        };
        let t = FaultyInMemoryTransport::new(cfg);
        let (_srv, mut devs) = t.open(1).expect("open");
        for _ in 0..50 {
            assert!(devs[0].send_uplink(&payload(64, 6)).is_err());
        }
    }

    #[test]
    fn duplicates_deliver_twice_and_receiver_survives() {
        let cfg = FaultConfig {
            seed: 5,
            duplicate: 1.0,
            ..FaultConfig::default()
        };
        let t = FaultyInMemoryTransport::new(cfg);
        let (mut srv, mut devs) = t.open(1).expect("open");
        devs[0].send_uplink(&payload(16, 7)).expect("send");
        let first = srv.recv_uplink(Duration::from_secs(1)).expect("one");
        let second = srv.recv_uplink(Duration::from_secs(1)).expect("two");
        assert_eq!(first, second);
    }

    #[test]
    fn reorder_holds_then_releases_behind_next_send() {
        let cfg = FaultConfig {
            seed: 6,
            reorder: 1.0,
            ..FaultConfig::default()
        };
        let t = FaultyInMemoryTransport::new(cfg);
        let (mut srv, mut devs) = t.open(1).expect("open");
        devs[0].send_uplink(&payload(8, 1)).expect("held");
        // Nothing on the wire yet: the frame is stashed.
        assert!(srv.recv_uplink(Duration::from_millis(20)).is_err());
        devs[0].send_uplink(&payload(8, 2)).expect("releases");
        let (_, a) = srv.recv_uplink(Duration::from_secs(1)).expect("first");
        let (_, b) = srv.recv_uplink(Duration::from_secs(1)).expect("second");
        // The second message overtook the first.
        assert_eq!(a, payload(8, 2));
        assert_eq!(b, payload(8, 1));
    }

    #[test]
    fn held_frames_flush_on_endpoint_drop() {
        let cfg = FaultConfig {
            seed: 8,
            reorder: 1.0,
            ..FaultConfig::default()
        };
        let t = FaultyInMemoryTransport::new(cfg);
        let (mut srv, mut devs) = t.open(1).expect("open");
        devs[0].send_uplink(&payload(8, 4)).expect("held");
        drop(devs);
        let (_, p) = srv.recv_uplink(Duration::from_secs(1)).expect("flushed");
        assert_eq!(p, payload(8, 4));
    }
}
