//! The wire frame: every message between a device and the server travels
//! as one length-prefixed, checksummed frame.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "FSCW"
//!      4     2  version      protocol version (currently 1)
//!      6     1  kind         0 Hello / 1 HelloAck / 2 Uplink / 3 Downlink
//!      7     1  flags        bit 0 = timed handshake (clock-offset
//!                            estimation); other bits reserved, must be 0
//!      8     8  device       sender/addressee device id
//!     16     8  seq          per-link sequence / attempt number
//!     24     4  payload_len  bytes of payload that follow the header
//!     28     4  crc32        CRC-32 (IEEE) over the frame with this
//!                            field zeroed — header *and* payload
//!     32     …  payload      opaque bytes (e.g. an encoded UplinkMessage)
//! ```
//!
//! The checksum covers the header too (with the CRC field itself zeroed),
//! so *any* single-bit corruption — in the payload, the length, the
//! sequence number, or the checksum itself — is detected; decoding returns
//! `Err` and never panics on adversarial input.

use crate::error::{io_error, Result, TransportError};
use bytes::{BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FSCW";
/// Protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 32;
/// Flag bit 0: a timed handshake. A Hello with this bit asks the server
/// to answer with a HelloAck carrying `[t1, t2]` receive/transmit
/// timestamps (two little-endian u64 nanoseconds) so the device can run
/// the midpoint clock-offset estimator. All other flag bits are reserved.
pub const FLAG_TIMED: u8 = 0x01;
/// Upper bound on a single frame's payload (defends length-field
/// corruption slipping past the magic check from allocating wildly; the
/// CRC would still catch it, but only after the allocation).
pub const MAX_PAYLOAD: usize = 1 << 30;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Device → server: connection opener announcing the device id.
    Hello,
    /// Server → device: handshake acknowledgement.
    HelloAck,
    /// Device → server: one encoded `UplinkMessage`.
    Uplink,
    /// Server → device: one encoded `DownlinkMessage`.
    Downlink,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::HelloAck => 1,
            FrameKind::Uplink => 2,
            FrameKind::Downlink => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        match b {
            0 => Ok(FrameKind::Hello),
            1 => Ok(FrameKind::HelloAck),
            2 => Ok(FrameKind::Uplink),
            3 => Ok(FrameKind::Downlink),
            _ => Err(TransportError::Malformed("unknown frame kind")),
        }
    }
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameKind,
    /// Flag bits (see [`FLAG_TIMED`]); 0 for ordinary frames.
    pub flags: u8,
    /// Device id the frame is from (uplink) or for (downlink).
    pub device: u64,
    /// Per-link sequence / attempt number (diagnostic; receivers dedup by
    /// device id, not seq).
    pub seq: u64,
    /// Opaque payload.
    pub payload: Bytes,
}

impl Frame {
    /// A payload-free frame (handshakes).
    pub fn control(kind: FrameKind, device: u64) -> Self {
        Frame {
            kind,
            flags: 0,
            device,
            seq: 0,
            payload: Bytes::new(),
        }
    }

    /// Sets flag bits (builder style).
    pub fn with_flags(mut self, flags: u8) -> Self {
        self.flags = flags;
        self
    }

    /// Total on-the-wire size of this frame.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serializes to wire bytes, computing the checksum.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_slice(&MAGIC);
        buf.put_slice(&VERSION.to_le_bytes());
        buf.put_slice(&[self.kind.to_byte(), self.flags]);
        buf.put_u64_le(self.device);
        buf.put_u64_le(self.seq);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_u32_le(0); // CRC placeholder, patched below.
        buf.put_slice(self.payload.as_slice());
        let mut bytes = buf.freeze().to_vec();
        let crc = crc32(&bytes);
        bytes[28..32].copy_from_slice(&crc.to_le_bytes());
        Bytes::from(bytes)
    }

    /// Decodes one whole frame from `bytes`. Rejects bad magic, foreign
    /// versions, unknown kinds, nonzero reserved flags, length mismatches,
    /// and checksum failures; never panics.
    ///
    /// The checksum is verified **before** the structural header fields:
    /// a bit flip landing on the version, kind, or flags byte must classify
    /// as transient corruption ([`TransportError::ChecksumMismatch`]) and
    /// be absorbed by the sender's retry budget — the terminal
    /// `VersionMismatch` / `Malformed` errors are reserved for frames a
    /// peer genuinely produced (valid CRC over foreign field values).
    pub fn decode(bytes: &[u8]) -> Result<Frame> {
        if bytes.len() < HEADER_LEN {
            return Err(TransportError::Truncated {
                needed: HEADER_LEN,
                got: bytes.len(),
            });
        }
        if bytes[0..4] != MAGIC {
            return Err(TransportError::BadMagic);
        }
        let le64 = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(b)
        };
        let le32 = |at: usize| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[at..at + 4]);
            u32::from_le_bytes(b)
        };
        // The CRC covers the whole buffer with its own field zeroed, so it
        // needs no trusted length field: verify it first.
        let stored_crc = le32(28);
        let computed = crc32_of_frame(bytes);
        if computed != stored_crc {
            crate::metrics::CRC_REJECTS.inc();
            return Err(TransportError::ChecksumMismatch {
                expected: stored_crc,
                got: computed,
            });
        }
        let payload_len = le32(24) as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(TransportError::Oversize { len: payload_len });
        }
        let total = HEADER_LEN + payload_len;
        if bytes.len() != total {
            return Err(TransportError::Truncated {
                needed: total,
                got: bytes.len(),
            });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(TransportError::VersionMismatch {
                ours: VERSION,
                theirs: version,
            });
        }
        if bytes[7] & !FLAG_TIMED != 0 {
            return Err(TransportError::Malformed("reserved flags set"));
        }
        let kind = FrameKind::from_byte(bytes[6])?;
        Ok(Frame {
            kind,
            flags: bytes[7],
            device: le64(8),
            seq: le64(16),
            payload: Bytes::from(bytes[HEADER_LEN..].to_vec()),
        })
    }
}

/// CRC over a full frame buffer with the CRC field (bytes 28..32) zeroed.
fn crc32_of_frame(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&bytes[..28]);
    crc.update(&[0, 0, 0, 0]);
    crc.update(&bytes[HEADER_LEN..]);
    crc.finish()
}

/// Reads one frame from a blocking reader (the caller must have armed a
/// read timeout on the underlying socket — `cargo xtask check` enforces
/// that every `TcpStream` user does). Returns the frame and its wire size.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(Frame, usize)> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| io_error("read frame header", &e))?;
    // Validate the prefix before trusting the length field.
    if header[0..4] != MAGIC {
        return Err(TransportError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(TransportError::VersionMismatch {
            ours: VERSION,
            theirs: version,
        });
    }
    let payload_len = u32::from_le_bytes([header[24], header[25], header[26], header[27]]) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(TransportError::Oversize { len: payload_len });
    }
    let mut whole = vec![0u8; HEADER_LEN + payload_len];
    whole[..HEADER_LEN].copy_from_slice(&header);
    r.read_exact(&mut whole[HEADER_LEN..])
        .map_err(|e| io_error("read frame payload", &e))?;
    let frame = Frame::decode(&whole)?;
    Ok((frame, whole.len()))
}

/// Writes one frame to a blocking writer (write timeout armed by the
/// caller). Returns the wire size written.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<usize> {
    let bytes = frame.encode();
    w.write_all(bytes.as_slice())
        .map_err(|e| io_error("write frame", &e))?;
    w.flush().map_err(|e| io_error("flush frame", &e))?;
    Ok(bytes.len())
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the ubiquitous
/// zlib/Ethernet checksum, implemented here because the build container has
/// no crates.io access.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

/// Incremental CRC-32 state.
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC_TABLE[idx];
        }
    }

    fn finish(&self) -> u32 {
        !self.state
    }
}

/// Byte-at-a-time lookup table for the reflected IEEE polynomial.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = Frame {
            kind: FrameKind::Uplink,
            flags: 0,
            device: 7,
            seq: 3,
            payload: Bytes::from(vec![1, 2, 3, 4, 5]),
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 5);
        assert_eq!(Frame::decode(bytes.as_slice()).ok(), Some(f));
    }

    #[test]
    fn control_frames_have_empty_payload() {
        let f = Frame::control(FrameKind::Hello, 12);
        let back = Frame::decode(f.encode().as_slice()).ok();
        assert_eq!(back, Some(f));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let f = Frame {
            kind: FrameKind::Downlink,
            flags: 0,
            device: 2,
            seq: 9,
            payload: Bytes::from(vec![0xAB; 24]),
        };
        let clean = f.encode().to_vec();
        for bit in 0..clean.len() * 8 {
            let mut dirty = clean.clone();
            dirty[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Frame::decode(&dirty).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let f = Frame {
            kind: FrameKind::Uplink,
            flags: 0,
            device: 0,
            seq: 0,
            payload: Bytes::from(vec![9; 16]),
        };
        let clean = f.encode().to_vec();
        for cut in 0..clean.len() {
            assert!(
                Frame::decode(&clean[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    /// Re-stamps a hand-mutated frame's CRC, as a genuine (if foreign)
    /// peer would.
    fn restamp_crc(bytes: &mut [u8]) {
        bytes[28..32].copy_from_slice(&[0; 4]);
        let crc = crc32(bytes);
        bytes[28..32].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn foreign_version_rejected() {
        let f = Frame::control(FrameKind::Hello, 1);
        let mut bytes = f.encode().to_vec();
        bytes[4] = 0x2A; // version 42, with a valid CRC: a real v42 peer.
        bytes[5] = 0;
        restamp_crc(&mut bytes);
        assert_eq!(
            Frame::decode(&bytes),
            Err(TransportError::VersionMismatch {
                ours: VERSION,
                theirs: 42
            })
        );
    }

    #[test]
    fn corrupted_version_byte_is_transient_not_version_mismatch() {
        // A bit flip on the version byte without a matching CRC is line
        // corruption: it must classify as a retryable checksum failure,
        // never as a terminal protocol mismatch.
        let f = Frame::control(FrameKind::Hello, 1);
        let mut bytes = f.encode().to_vec();
        bytes[4] ^= 0x08;
        let err = Frame::decode(&bytes).expect_err("corruption detected");
        assert!(
            matches!(err, TransportError::ChecksumMismatch { .. }) && err.is_transient(),
            "{err}"
        );
        // Same for the kind and reserved-flags bytes.
        for at in [6usize, 7] {
            let mut bytes = f.encode().to_vec();
            bytes[at] ^= 0x80;
            let err = Frame::decode(&bytes).expect_err("corruption detected");
            assert!(err.is_transient(), "byte {at}: {err}");
        }
    }

    #[test]
    fn reader_writer_round_trip() {
        let f = Frame {
            kind: FrameKind::Uplink,
            flags: 0,
            device: 4,
            seq: 1,
            payload: Bytes::from(vec![7; 100]),
        };
        let mut buf: Vec<u8> = Vec::new();
        let n = write_frame(&mut buf, &f).expect("write to Vec");
        assert_eq!(n, f.wire_len());
        let mut cursor = std::io::Cursor::new(buf);
        let (back, read) = read_frame(&mut cursor).expect("read back");
        assert_eq!(back, f);
        assert_eq!(read, n);
    }

    #[test]
    fn timed_flag_round_trips_but_reserved_bits_do_not() {
        // Bit 0 is the sanctioned timed-handshake flag.
        let f = Frame::control(FrameKind::Hello, 3).with_flags(FLAG_TIMED);
        let back = Frame::decode(f.encode().as_slice()).expect("timed flag is legal");
        assert_eq!(back.flags, FLAG_TIMED);
        // A genuine peer (valid CRC) setting any reserved bit is malformed.
        let mut bytes = Frame::control(FrameKind::Hello, 3).encode().to_vec();
        bytes[7] = 0x02;
        restamp_crc(&mut bytes);
        assert_eq!(
            Frame::decode(&bytes),
            Err(TransportError::Malformed("reserved flags set"))
        );
    }

    #[test]
    fn oversize_length_field_rejected_before_allocation() {
        let f = Frame::control(FrameKind::Hello, 1);
        let mut bytes = f.encode().to_vec();
        bytes[24..28].copy_from_slice(&(u32::MAX).to_le_bytes());
        restamp_crc(&mut bytes);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(TransportError::Oversize { .. })
        ));
    }
}
