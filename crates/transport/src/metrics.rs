//! Global transport counters (see `fedsc_obs::metrics`).
//!
//! Every endpoint already keeps a per-endpoint [`LinkStats`](crate::LinkStats);
//! these process-wide counters mirror the *same* update sites so a metrics
//! snapshot agrees with summed endpoint accounting, and add what per-endpoint
//! stats cannot see: CRC rejects inside the codec, retry attempts inside
//! [`with_retry`](crate::with_retry), and the fault injector's per-kind
//! decisions (which match the seeded transcript line for line).

use fedsc_obs::LazyCounter;

/// Bytes any endpoint put on the wire (same accounting basis as its
/// `LinkStats::bytes_sent`).
pub(crate) static BYTES_SENT: LazyCounter = LazyCounter::new("transport.bytes_sent");
/// Bytes any endpoint took off the wire.
pub(crate) static BYTES_RECEIVED: LazyCounter = LazyCounter::new("transport.bytes_received");
/// Messages sent (handshake frames excluded).
pub(crate) static MSGS_SENT: LazyCounter = LazyCounter::new("transport.msgs_sent");
/// Messages received (handshake frames excluded).
pub(crate) static MSGS_RECEIVED: LazyCounter = LazyCounter::new("transport.msgs_received");
/// Frames rejected by the CRC check in [`crate::Frame::decode`].
pub(crate) static CRC_REJECTS: LazyCounter = LazyCounter::new("transport.crc_rejects");
/// Retry attempts consumed inside [`crate::with_retry`] (first tries are
/// not counted; only re-runs after a transient error).
pub(crate) static RETRIES: LazyCounter = LazyCounter::new("transport.retries");
/// TCP-only bytes put on the wire (wire-true: framing and handshakes count).
pub(crate) static TCP_BYTES_SENT: LazyCounter = LazyCounter::new("transport.tcp.bytes_sent");
/// TCP-only bytes taken off the wire.
pub(crate) static TCP_BYTES_RECEIVED: LazyCounter =
    LazyCounter::new("transport.tcp.bytes_received");
/// Injected drops (transcript `drop` lines).
pub(crate) static FAULT_DROP: LazyCounter = LazyCounter::new("transport.fault.drop");
/// Injected duplicates that reached delivery (transcript `dup` markers plus
/// two-frame `hold` lines).
pub(crate) static FAULT_DUPLICATE: LazyCounter = LazyCounter::new("transport.fault.duplicate");
/// Injected reorder holds (transcript `hold` lines).
pub(crate) static FAULT_REORDER: LazyCounter = LazyCounter::new("transport.fault.reorder");
/// Injected bit flips (transcript `bitflip` lines).
pub(crate) static FAULT_BIT_FLIP: LazyCounter = LazyCounter::new("transport.fault.bit_flip");
/// Injected truncations (transcript `truncate` lines).
pub(crate) static FAULT_TRUNCATE: LazyCounter = LazyCounter::new("transport.fault.truncate");
/// Injected delays (wall-clock only; never appear in the transcript).
pub(crate) static FAULT_DELAY: LazyCounter = LazyCounter::new("transport.fault.delay");
