//! # fedsc-transport — pluggable device↔server links for the Fed-SC round
//!
//! The Fed-SC protocol is one-shot: each device uploads one encoded
//! message, the server answers each included device once. This crate
//! abstracts *how those bytes travel* behind three traits so the round in
//! `fedsc::wire` runs unchanged over any link:
//!
//! * [`Transport`] — a factory producing one paired [`ServerTransport`]
//!   plus one [`DeviceTransport`] per device.
//! * [`DeviceTransport`] — the device side: send the uplink payload,
//!   await the downlink reply.
//! * [`ServerTransport`] — the server side: collect uplinks (with a
//!   timeout, so a straggler policy can give up), answer per device.
//!
//! Three implementations ship here:
//!
//! * [`mem::InMemoryTransport`] — lossless in-process channels, byte-
//!   faithful and accounting payload bytes only; the reference link the
//!   bit-identical tests run over.
//! * [`fault::FaultyInMemoryTransport`] — the same channels wrapped in
//!   seeded, deterministic fault injection (drop / delay / duplicate /
//!   reorder / truncate / bit-flip per message), with a byte-reproducible
//!   transcript of what the link did.
//! * [`tcp::TcpTransport`] — real TCP over `std::net`: length-prefixed
//!   [`frame`]s with a magic header, version handshake, CRC-32 checksum,
//!   per-operation socket timeouts, and bounded exponential-backoff retry.
//!
//! Payloads are opaque `Bytes` — the message schema (and the round logic,
//! including the quorum/straggler policy) lives above, in `fedsc::wire`.

#![warn(missing_docs)]

pub mod error;
pub mod fault;
pub mod frame;
pub mod mem;
mod metrics;
pub mod tcp;
pub mod timing;

pub use error::{Result, TransportError};
pub use fault::{FaultConfig, FaultyInMemoryTransport};
pub use frame::{Frame, FrameKind};
pub use mem::InMemoryTransport;
pub use tcp::{TcpDevice, TcpOptions, TcpServer, TcpTransport};
pub use timing::{with_retry, Deadline};

use bytes::Bytes;
use std::time::Duration;

/// Byte/message accounting for one endpoint, as observed on the wire —
/// framed transports count framing and handshake bytes, the lossless
/// in-memory link counts payload bytes only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Bytes this endpoint put on the wire.
    pub bytes_sent: usize,
    /// Bytes this endpoint took off the wire.
    pub bytes_received: usize,
    /// Messages sent (handshake frames excluded).
    pub messages_sent: u64,
    /// Messages received (handshake frames excluded).
    pub messages_received: u64,
}

impl LinkStats {
    /// Folds another endpoint's accounting into this one — how the
    /// hierarchical tree sums one tier's per-parent endpoints into the
    /// tier total.
    pub fn merge(&mut self, other: &LinkStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
    }

    /// Records `n` bytes put on the wire, mirrored to the global
    /// `transport.bytes_sent` counter.
    pub(crate) fn on_bytes_sent(&mut self, n: usize) {
        self.bytes_sent += n;
        metrics::BYTES_SENT.add(n as u64);
    }

    /// Records `n` bytes taken off the wire, mirrored to the global
    /// `transport.bytes_received` counter.
    pub(crate) fn on_bytes_received(&mut self, n: usize) {
        self.bytes_received += n;
        metrics::BYTES_RECEIVED.add(n as u64);
    }

    /// Records one message sent, mirrored to `transport.msgs_sent`.
    pub(crate) fn on_msg_sent(&mut self) {
        self.messages_sent += 1;
        metrics::MSGS_SENT.inc();
    }

    /// Records one message received, mirrored to `transport.msgs_received`.
    pub(crate) fn on_msg_received(&mut self) {
        self.messages_received += 1;
        metrics::MSGS_RECEIVED.inc();
    }
}

/// The device side of a link: one uplink out, one downlink back.
pub trait DeviceTransport: Send {
    /// Transmits one uplink payload to the server. A transient `Err`
    /// (dropped, corrupted-and-rejected, connection refused…) may be
    /// retried by the caller; [`with_retry`] implements the policy.
    fn send_uplink(&mut self, payload: &Bytes) -> Result<()>;

    /// Awaits the server's downlink payload for at most `timeout`.
    fn recv_downlink(&mut self, timeout: Duration) -> Result<Bytes>;

    /// Estimates this endpoint's clock offset to the server in
    /// nanoseconds (`server_time ≈ local_time + offset`), for aligning
    /// per-process trace timestamps. The in-process links share one
    /// clock, so the default is a no-op `0`; the TCP link piggybacks a
    /// timed version handshake and applies the NTP midpoint estimator
    /// (see `tcp::TcpDevice`).
    fn clock_sync(&mut self) -> Result<i64> {
        Ok(0)
    }

    /// Wire accounting so far.
    fn stats(&self) -> LinkStats;
}

/// The server side of a link fan-in: uplinks arrive tagged with the device
/// id, downlinks are addressed per device.
pub trait ServerTransport: Send {
    /// Awaits the next valid uplink payload for at most `timeout`,
    /// returning the sending device's id. Duplicate deliveries of the same
    /// device's upload may surface more than once; callers dedup by id.
    fn recv_uplink(&mut self, timeout: Duration) -> Result<(usize, Bytes)>;

    /// Transmits one downlink payload to `device`.
    fn send_downlink(&mut self, device: usize, payload: &Bytes) -> Result<()>;

    /// Wire accounting so far.
    fn stats(&self) -> LinkStats;
}

/// A factory wiring one server endpoint to `devices` device endpoints.
pub trait Transport {
    /// Server-side endpoint type.
    type Server: ServerTransport;
    /// Device-side endpoint type.
    type Device: DeviceTransport;

    /// Opens the link fan-in: one server endpoint, `devices` device
    /// endpoints (index `z` in the returned vector talks as device `z`).
    fn open(&self, devices: usize) -> Result<(Self::Server, Vec<Self::Device>)>;
}
