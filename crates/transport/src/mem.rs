//! Lossless in-process transport: the reference link.
//!
//! Replicates the original `fedsc::wire` channel wiring — unbounded MPMC
//! channels carrying raw payload bytes, no framing — so runs over this
//! transport are bit-identical to the historical in-process scheme, and
//! byte accounting remains payload-only (the quantity the paper's
//! Section IV-E communication costs are stated in).

use crate::error::{Result, TransportError};
use crate::{DeviceTransport, LinkStats, ServerTransport, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Factory for lossless in-process links.
#[derive(Debug, Clone, Copy, Default)]
pub struct InMemoryTransport;

/// Server endpoint over in-process channels.
pub struct MemServer {
    uplink_rx: Receiver<(usize, Bytes)>,
    downlink_txs: Vec<Sender<Bytes>>,
    stats: LinkStats,
}

/// Device endpoint over in-process channels.
pub struct MemDevice {
    device: usize,
    uplink_tx: Sender<(usize, Bytes)>,
    downlink_rx: Receiver<Bytes>,
    stats: LinkStats,
}

impl Transport for InMemoryTransport {
    type Server = MemServer;
    type Device = MemDevice;

    fn open(&self, devices: usize) -> Result<(MemServer, Vec<MemDevice>)> {
        let (uplink_tx, uplink_rx) = unbounded::<(usize, Bytes)>();
        let mut downlink_txs = Vec::with_capacity(devices);
        let mut endpoints = Vec::with_capacity(devices);
        for z in 0..devices {
            let (tx, rx) = unbounded::<Bytes>();
            downlink_txs.push(tx);
            endpoints.push(MemDevice {
                device: z,
                uplink_tx: uplink_tx.clone(),
                downlink_rx: rx,
                stats: LinkStats::default(),
            });
        }
        Ok((
            MemServer {
                uplink_rx,
                downlink_txs,
                stats: LinkStats::default(),
            },
            endpoints,
        ))
    }
}

impl DeviceTransport for MemDevice {
    fn send_uplink(&mut self, payload: &Bytes) -> Result<()> {
        self.uplink_tx
            .send((self.device, payload.clone()))
            .map_err(|_| TransportError::Closed("server endpoint dropped"))?;
        self.stats.on_bytes_sent(payload.len());
        self.stats.on_msg_sent();
        Ok(())
    }

    fn recv_downlink(&mut self, timeout: Duration) -> Result<Bytes> {
        let payload = self
            .downlink_rx
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::Timeout("downlink recv"),
                RecvTimeoutError::Disconnected => {
                    TransportError::Closed("server finished without answering this device")
                }
            })?;
        self.stats.on_bytes_received(payload.len());
        self.stats.on_msg_received();
        Ok(payload)
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

impl ServerTransport for MemServer {
    fn recv_uplink(&mut self, timeout: Duration) -> Result<(usize, Bytes)> {
        let (z, payload) = self.uplink_rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout("uplink recv"),
            RecvTimeoutError::Disconnected => {
                TransportError::Closed("every device endpoint dropped")
            }
        })?;
        self.stats.on_bytes_received(payload.len());
        self.stats.on_msg_received();
        Ok((z, payload))
    }

    fn send_downlink(&mut self, device: usize, payload: &Bytes) -> Result<()> {
        let tx = self
            .downlink_txs
            .get(device)
            .ok_or(TransportError::Closed("unknown device id"))?;
        tx.send(payload.clone())
            .map_err(|_| TransportError::Closed("device endpoint dropped"))?;
        self.stats.on_bytes_sent(payload.len());
        self.stats.on_msg_sent();
        Ok(())
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_payloads_and_accounting() {
        let (mut srv, mut devs) = InMemoryTransport.open(3).expect("open");
        for d in devs.iter_mut() {
            d.send_uplink(&Bytes::from(vec![d.device as u8; 10]))
                .expect("send");
        }
        let mut seen = [false; 3];
        for _ in 0..3 {
            let (z, payload) = srv
                .recv_uplink(Duration::from_secs(1))
                .expect("uplink arrives");
            assert_eq!(payload.as_slice(), &[z as u8; 10]);
            seen[z] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(srv.stats().bytes_received, 30);
        assert_eq!(srv.stats().messages_received, 3);

        srv.send_downlink(1, &Bytes::from(vec![9, 9]))
            .expect("down");
        let got = devs[1]
            .recv_downlink(Duration::from_secs(1))
            .expect("reply");
        assert_eq!(got.as_slice(), &[9, 9]);
        assert_eq!(srv.stats().bytes_sent, 2);
        assert_eq!(devs[1].stats().bytes_received, 2);
    }

    #[test]
    fn uplink_recv_times_out() {
        let (mut srv, _devs) = InMemoryTransport.open(2).expect("open");
        assert_eq!(
            srv.recv_uplink(Duration::from_millis(10)),
            Err(TransportError::Timeout("uplink recv"))
        );
    }

    #[test]
    fn dropping_server_unblocks_devices() {
        let (srv, mut devs) = InMemoryTransport.open(1).expect("open");
        drop(srv);
        assert!(matches!(
            devs[0].recv_downlink(Duration::from_secs(5)),
            Err(TransportError::Closed(_))
        ));
    }

    #[test]
    fn dropping_all_devices_closes_uplink() {
        let (mut srv, devs) = InMemoryTransport.open(2).expect("open");
        drop(devs);
        assert!(matches!(
            srv.recv_uplink(Duration::from_secs(5)),
            Err(TransportError::Closed(_))
        ));
    }
}
