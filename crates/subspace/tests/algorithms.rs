//! Cross-algorithm integration tests: all five centralized SC baselines on
//! shared instances, plus the paper's argument for SSC over TSC as the
//! *local* method (TSC's reliance on uniformly spread points).

// Test code: a panic is a test failure, so unwrap is the idiom here
// (clippy's allow-unwrap-in-tests does not reach integration-test helpers).
#![allow(clippy::unwrap_used)]

use fedsc_clustering::clustering_accuracy;
use fedsc_linalg::random::{gaussian_vector, random_orthonormal_basis};
use fedsc_linalg::{vector, Matrix};
use fedsc_subspace::model::LabeledData;
use fedsc_subspace::{Ensc, Nsn, Ssc, SscOmp, SubspaceClusterer, SubspaceModel, Tsc};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn easy_instance(seed: u64) -> LabeledData {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SubspaceModel::random(&mut rng, 40, 3, 3);
    model.sample_dataset(&mut rng, &[25, 25, 25], 0.0)
}

#[test]
fn all_five_algorithms_solve_the_easy_instance() {
    let ds = easy_instance(1);
    let mut rng = StdRng::seed_from_u64(2);
    let run = |name: &str, labels: Vec<usize>| {
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 90.0, "{name} accuracy {acc}");
    };
    run(
        "SSC",
        Ssc::default().cluster(&ds.data, 3, &mut rng).unwrap(),
    );
    run("TSC", Tsc::new(6).cluster(&ds.data, 3, &mut rng).unwrap());
    run(
        "SSC-OMP",
        SscOmp::with_sparsity(3)
            .cluster(&ds.data, 3, &mut rng)
            .unwrap(),
    );
    run(
        "EnSC",
        Ensc::default().cluster(&ds.data, 3, &mut rng).unwrap(),
    );
    run(
        "NSN",
        Nsn::new(6, 3).cluster(&ds.data, 3, &mut rng).unwrap(),
    );
}

#[test]
fn noise_ladder_degrades_gracefully() {
    // Accuracy should not fall off a cliff between adjacent mild noise
    // levels for the sparse-coding methods.
    let mut rng = StdRng::seed_from_u64(3);
    let model = SubspaceModel::random(&mut rng, 40, 3, 3);
    let mut prev = 101.0f64;
    for &noise in &[0.0, 0.01, 0.03] {
        let ds = model.sample_dataset(&mut rng, &[25, 25, 25], noise);
        let labels = Ssc::default().cluster(&ds.data, 3, &mut rng).unwrap();
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 85.0, "noise {noise}: accuracy {acc}");
        assert!(
            acc <= prev + 10.0,
            "non-monotone beyond tolerance at {noise}"
        );
        prev = acc;
    }
}

/// Builds data where each subspace's points bunch into two tight antipodal
/// lobes (heavily non-uniform) — the setting the paper cites when arguing
/// TSC's guarantees "rely critically on the uniform distribution of data
/// points on subspaces" while SSC handles heterogeneous local data.
fn skewed_instance(seed: u64) -> LabeledData {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 40;
    let d = 3;
    let l = 3;
    let per_lobe = 12;
    let mut cols: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    for s in 0..l {
        let basis = random_orthonormal_basis(&mut rng, n, d);
        for lobe in 0..2 {
            // Lobe center in coefficient space; tight spread around it.
            let mut mu = gaussian_vector(&mut rng, d);
            vector::normalize(&mut mu, 1e-12);
            let sign = if lobe == 0 { 3.0 } else { -3.0 };
            for _ in 0..per_lobe {
                let eps = gaussian_vector(&mut rng, d);
                let coeff: Vec<f64> = mu
                    .iter()
                    .zip(&eps)
                    .map(|(&m, &e)| sign * m + 0.25 * e)
                    .collect();
                let mut x = basis.matvec(&coeff).unwrap();
                vector::normalize(&mut x, 1e-12);
                cols.push(x);
                labels.push(s);
            }
        }
    }
    let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    LabeledData {
        data: Matrix::from_columns(&refs).unwrap(),
        labels,
    }
}

#[test]
fn ssc_tolerates_skewed_data_at_least_as_well_as_tsc() {
    // Averaged over seeds to keep the comparison stable.
    let mut ssc_total = 0.0;
    let mut tsc_total = 0.0;
    for seed in 0..4 {
        let ds = skewed_instance(100 + seed);
        let mut rng = StdRng::seed_from_u64(7 + seed);
        let ssc = Ssc::default().cluster(&ds.data, 3, &mut rng).unwrap();
        let tsc = Tsc::new(6).cluster(&ds.data, 3, &mut rng).unwrap();
        ssc_total += clustering_accuracy(&ds.labels, &ssc);
        tsc_total += clustering_accuracy(&ds.labels, &tsc);
    }
    assert!(
        ssc_total >= tsc_total - 10.0,
        "SSC avg {} should not trail TSC avg {} on skewed data",
        ssc_total / 4.0,
        tsc_total / 4.0
    );
    assert!(ssc_total / 4.0 > 80.0, "SSC avg {}", ssc_total / 4.0);
}

#[test]
fn affinity_graphs_are_symmetric_nonnegative_zero_diagonal() {
    let ds = easy_instance(5);
    let graphs = [
        Ssc::default().affinity(&ds.data).unwrap(),
        Tsc::new(5).affinity(&ds.data).unwrap(),
        SscOmp::with_sparsity(3).affinity(&ds.data).unwrap(),
        Ensc::default().affinity(&ds.data).unwrap(),
        Nsn::new(5, 3).affinity(&ds.data).unwrap(),
    ];
    for g in &graphs {
        let n = g.len();
        for i in 0..n {
            assert_eq!(g.weight(i, i), 0.0);
            for j in 0..i {
                assert!(g.weight(i, j) >= 0.0);
                assert!((g.weight(i, j) - g.weight(j, i)).abs() < 1e-12);
            }
        }
    }
}
