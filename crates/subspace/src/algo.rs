//! The common interface all subspace-clustering algorithms implement.

use fedsc_clustering::spectral::{spectral_clustering, SpectralOptions};
use fedsc_graph::AffinityGraph;
use fedsc_linalg::{Matrix, Result};
use rand::Rng;

/// A spectral-based subspace-clustering algorithm: builds an affinity graph
/// over the columns of a data matrix; segmentation is shared normalized
/// spectral clustering.
pub trait SubspaceClusterer {
    /// Algorithm name for reports and benches.
    fn name(&self) -> &'static str;

    /// Builds the affinity graph over the columns of `data`.
    fn affinity(&self, data: &Matrix) -> Result<AffinityGraph>;

    /// Clusters the columns of `data` into `k` groups: affinity graph plus
    /// normalized spectral clustering.
    fn cluster<R: Rng + ?Sized>(&self, data: &Matrix, k: usize, rng: &mut R) -> Result<Vec<usize>> {
        let g = self.affinity(data)?;
        spectral_clustering(&g, &SpectralOptions::new(k), rng)
    }
}

/// Returns a column-normalized copy of `data` (unit `l2` columns), the
/// standing preprocessing step of every SC method here.
pub fn normalize_data(data: &Matrix) -> Matrix {
    let mut d = data.clone();
    d.normalize_columns(1e-12);
    d
}
