//! Deterministic neighbor selection shared by the candidate pipeline and
//! the neighborhood-based clusterers (TSC's spherical q-NN, NSN's greedy
//! sets).
//!
//! All selection here is by **total order**: scores compare with
//! `f64::total_cmp` and ties break on the smaller index, so the chosen sets
//! are independent of thread count, sort stability, and NaN quirks —
//! the property the subquadratic pipeline's bitwise-reproducibility
//! guarantees rest on.

/// Indices of the `k` largest scores among `0..n`, excluding `exclude`
/// (pass `usize::MAX` to keep everything), returned **ascending**.
///
/// Ranking is descending by `score(j)` under `total_cmp` with ascending-
/// index tie-break; the cut is therefore unique and deterministic even with
/// duplicated scores.
pub fn top_k_indices<F: Fn(usize) -> f64>(
    n: usize,
    k: usize,
    exclude: usize,
    score: F,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).filter(|&j| j != exclude).collect();
    let k = k.min(order.len());
    if k == 0 {
        return vec![];
    }
    // The comparator is a strict total order, so the top-k *set* is unique —
    // an O(n) partition selects exactly the same set the previous full sort
    // did, which matters at candidate-pipeline sizes (n in the tens of
    // thousands, selection once per point).
    if k < order.len() {
        order.select_nth_unstable_by(k - 1, |&a, &b| {
            score(b).total_cmp(&score(a)).then(a.cmp(&b))
        });
        order.truncate(k);
    }
    order.sort_unstable();
    order
}

/// The `q` largest `(score, index)` pairs among `0..n` excluding `i`,
/// descending — the TSC-style neighbor list (same ranking as
/// [`top_k_indices`], but keeping the scores and the ranked order for
/// weighted-affinity construction).
pub fn ranked_neighbors<F: Fn(usize) -> f64>(
    n: usize,
    q: usize,
    i: usize,
    score: F,
) -> Vec<(f64, usize)> {
    let mut sims: Vec<(f64, usize)> = (0..n).filter(|&j| j != i).map(|j| (score(j), j)).collect();
    sims.sort_by(|a, b| b.0.total_cmp(&a.0));
    sims.truncate(q.min(n.saturating_sub(1)));
    sims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_picks_largest_and_sorts_ascending() {
        let scores = [0.1, 0.9, 0.4, 0.9, 0.2];
        let top = top_k_indices(5, 2, usize::MAX, |j| scores[j]);
        assert_eq!(top, vec![1, 3]); // tie at 0.9 broken by index
        let top = top_k_indices(5, 3, usize::MAX, |j| scores[j]);
        assert_eq!(top, vec![1, 2, 3]);
    }

    #[test]
    fn exclusion_and_clamping() {
        let scores = [0.5, 0.6, 0.7];
        assert_eq!(top_k_indices(3, 10, 2, |j| scores[j]), vec![0, 1]);
        assert_eq!(
            top_k_indices(3, 0, usize::MAX, |j| scores[j]),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn ranked_neighbors_descending_with_index_tiebreak() {
        let scores = [0.3, 0.8, 0.8, 0.1];
        let r = ranked_neighbors(4, 3, 3, |j| scores[j]);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].1, 1);
        assert_eq!(r[1].1, 2);
        assert_eq!(r[2].1, 0);
    }

    #[test]
    fn nan_scores_rank_last_deterministically() {
        // total_cmp puts NaN above +inf in descending order? No: descending
        // by total_cmp ranks +NaN first, -NaN last — either way the order is
        // total and reproducible. Pin the behavior.
        let scores = [f64::NAN, 1.0, 2.0];
        let a = top_k_indices(3, 2, usize::MAX, |j| scores[j]);
        let b = top_k_indices(3, 2, usize::MAX, |j| scores[j]);
        assert_eq!(a, b);
    }
}
