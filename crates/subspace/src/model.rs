//! Union-of-subspaces data model.
//!
//! The paper's Section VI-A synthetic generator: `L` subspaces of dimension
//! `d` in ambient dimension `n`, each with an i.i.d. Haar-random orthonormal
//! basis; points are Gaussian coefficient combinations of the basis columns,
//! normalized onto the unit sphere (the theory's standing assumption).

use fedsc_linalg::random::{gaussian_vector, random_orthonormal_basis};
use fedsc_linalg::{vector, Matrix};
use rand::Rng;

/// A union of linear subspaces with known bases — the ground truth the
/// clustering algorithms try to recover.
#[derive(Debug, Clone)]
pub struct SubspaceModel {
    /// Ambient dimension `n`.
    pub ambient_dim: usize,
    /// One orthonormal basis (`n x d_l`) per subspace.
    pub bases: Vec<Matrix>,
}

impl SubspaceModel {
    /// Draws `l` i.i.d. Haar-random subspaces of dimension `d` in `R^n`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize, l: usize) -> Self {
        let bases = (0..l)
            .map(|_| random_orthonormal_basis(rng, n, d))
            .collect();
        Self {
            ambient_dim: n,
            bases,
        }
    }

    /// Number of subspaces `L`.
    pub fn num_subspaces(&self) -> usize {
        self.bases.len()
    }

    /// Dimension of subspace `l`.
    pub fn dim(&self, l: usize) -> usize {
        self.bases[l].cols()
    }

    /// Draws one unit-norm point from subspace `l` (Gaussian coefficients,
    /// normalized).
    pub fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R, l: usize) -> Vec<f64> {
        let basis = &self.bases[l];
        loop {
            let alpha = gaussian_vector(rng, basis.cols());
            // INVARIANT: `alpha` is drawn with length `basis.cols()` above.
            let mut x = basis
                .matvec(&alpha)
                .expect("coefficient length matches basis");
            if vector::normalize(&mut x, 1e-300) > 0.0 {
                return x;
            }
        }
    }

    /// Draws a labeled dataset with `points_per_subspace[l]` points from
    /// subspace `l`, optionally perturbed by additive Gaussian noise of the
    /// given standard deviation (points are re-normalized after noise, per
    /// the standard noisy-SSC convention).
    pub fn sample_dataset<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        points_per_subspace: &[usize],
        noise_std: f64,
    ) -> LabeledData {
        assert_eq!(
            points_per_subspace.len(),
            self.num_subspaces(),
            "need one count per subspace"
        );
        let total: usize = points_per_subspace.iter().sum();
        let mut data = Matrix::zeros(self.ambient_dim, total);
        let mut labels = Vec::with_capacity(total);
        let mut col = 0;
        for (l, &count) in points_per_subspace.iter().enumerate() {
            for _ in 0..count {
                let mut x = self.sample_point(rng, l);
                if noise_std > 0.0 {
                    for v in &mut x {
                        *v += noise_std * fedsc_linalg::random::standard_normal(rng);
                    }
                    vector::normalize(&mut x, 1e-300);
                }
                data.col_mut(col).copy_from_slice(&x);
                labels.push(l);
                col += 1;
            }
        }
        LabeledData { data, labels }
    }

    /// Maximum pairwise normalized affinity between distinct subspaces —
    /// the quantity the paper's semi-random conditions bound.
    pub fn max_normalized_affinity(&self) -> f64 {
        let l = self.num_subspaces();
        let mut worst = 0.0f64;
        for a in 0..l {
            for b in a + 1..l {
                // INVARIANT: all model bases are built in the same R^n.
                let aff = fedsc_linalg::angles::normalized_affinity(&self.bases[a], &self.bases[b])
                    .expect("bases share ambient dimension");
                worst = worst.max(aff);
            }
        }
        worst
    }
}

/// A column-point dataset with ground-truth subspace labels.
#[derive(Debug, Clone)]
pub struct LabeledData {
    /// Points as columns (`n x N`).
    pub data: Matrix,
    /// Ground-truth subspace index per column.
    pub labels: Vec<usize>,
}

impl LabeledData {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when there are no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Selects a sub-dataset by column indices.
    pub fn select(&self, indices: &[usize]) -> LabeledData {
        LabeledData {
            data: self.data.select_columns(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Number of distinct labels present.
    pub fn num_classes(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for &l in &self.labels {
            seen.insert(l);
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_points_are_unit_norm_and_in_subspace() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SubspaceModel::random(&mut rng, 20, 5, 3);
        for l in 0..3 {
            let x = model.sample_point(&mut rng, l);
            assert!((vector::norm2(&x) - 1.0).abs() < 1e-12);
            // Residual after projecting onto the basis vanishes.
            let c = model.bases[l].tr_matvec(&x).unwrap();
            let proj = model.bases[l].matvec(&c).unwrap();
            let err: f64 = proj
                .iter()
                .zip(&x)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10);
        }
    }

    #[test]
    fn dataset_shapes_and_labels() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = SubspaceModel::random(&mut rng, 10, 2, 3);
        let ds = model.sample_dataset(&mut rng, &[4, 0, 2], 0.0);
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.data.shape(), (10, 6));
        assert_eq!(ds.labels, vec![0, 0, 0, 0, 2, 2]);
        assert_eq!(ds.num_classes(), 2);
    }

    #[test]
    fn noise_keeps_unit_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SubspaceModel::random(&mut rng, 10, 2, 1);
        let ds = model.sample_dataset(&mut rng, &[5], 0.1);
        for j in 0..5 {
            assert!((vector::norm2(ds.data.col(j)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn select_subsets() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = SubspaceModel::random(&mut rng, 8, 2, 2);
        let ds = model.sample_dataset(&mut rng, &[3, 3], 0.0);
        let sub = ds.select(&[0, 4]);
        assert_eq!(sub.labels, vec![0, 1]);
        assert_eq!(sub.data.cols(), 2);
    }

    #[test]
    fn random_subspaces_in_high_dim_have_low_affinity() {
        let mut rng = StdRng::seed_from_u64(5);
        // d = 2, n = 100: random planes are nearly orthogonal.
        let model = SubspaceModel::random(&mut rng, 100, 2, 4);
        assert!(model.max_normalized_affinity() < 0.5);
    }
}
