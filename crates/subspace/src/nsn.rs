//! NSN — greedy Nearest Subspace Neighbor (Park, Caramanis & Sanghavi,
//! NeurIPS 2014).
//!
//! For each point, greedily grows a neighborhood: maintain an orthonormal
//! basis `U` of the span of the neighbors collected so far (seeded with the
//! point itself), and repeatedly add the point with the largest projection
//! norm `||U^T x_j||` onto that span, extending the basis while its
//! dimension is below `k_max`. The affinity graph connects each point to its
//! collected neighbors.

use crate::algo::{normalize_data, SubspaceClusterer};
use fedsc_graph::AffinityGraph;
use fedsc_linalg::{par, vector, Matrix, Result};

/// NSN configuration.
#[derive(Debug, Clone)]
pub struct Nsn {
    /// Number of neighbors to collect per point.
    pub num_neighbors: usize,
    /// Maximum dimension of the greedy subspace (typically the expected
    /// subspace dimension).
    pub max_subspace_dim: usize,
    /// Normalize columns first.
    pub normalize: bool,
    /// Worker threads for the per-point greedy neighbor searches. Each
    /// point's search carries its own basis workspace, so the graph is
    /// bitwise identical for every value.
    pub threads: usize,
}

impl Nsn {
    /// NSN collecting `num_neighbors` neighbors with subspace dimension cap
    /// `max_subspace_dim`.
    pub fn new(num_neighbors: usize, max_subspace_dim: usize) -> Self {
        Self {
            num_neighbors,
            max_subspace_dim,
            normalize: true,
            threads: 1,
        }
    }
}

impl Default for Nsn {
    fn default() -> Self {
        Self::new(5, 5)
    }
}

impl SubspaceClusterer for Nsn {
    fn name(&self) -> &'static str {
        "NSN"
    }

    fn affinity(&self, data: &Matrix) -> Result<AffinityGraph> {
        let x = if self.normalize {
            normalize_data(data)
        } else {
            data.clone()
        };
        let n = x.cols();
        let picks = self.neighbor_sets(&x);
        let mut w = Matrix::zeros(n, n);
        for (i, chosen) in picks.iter().enumerate() {
            for &j in chosen {
                w[(i, j)] = 1.0;
            }
        }
        Ok(AffinityGraph::from_symmetric(&w))
    }
}

impl Nsn {
    /// The greedy neighbor set of every column of `x` (assumed already
    /// normalized if desired) — the selection stage of [`Self::affinity`],
    /// exposed so pipelines can reuse NSN's search without building the
    /// dense graph.
    ///
    /// Per-point greedy searches are independent, so they fan out over the
    /// worker pool; each worker carries its own basis/projection workspace
    /// and reports the point's picks for sequential assembly, keeping the
    /// result bitwise identical for every thread count.
    pub fn neighbor_sets(&self, x: &Matrix) -> Vec<Vec<usize>> {
        let n = x.cols();
        let dim = x.rows();
        let k = self.num_neighbors.min(n.saturating_sub(1));
        par::par_map(n, self.threads.max(1), |i| {
            // Orthonormal basis vectors of the greedy subspace.
            let mut basis: Vec<Vec<f64>> = Vec::with_capacity(self.max_subspace_dim);
            // Squared projection norms onto the current span, updated
            // incrementally as basis vectors are appended.
            let mut proj_sq = vec![0.0f64; n];
            let mut selected = vec![false; n];
            selected[i] = true;
            let mut chosen = Vec::with_capacity(k);
            // Seed the basis with the point itself.
            push_orthonormalized(&mut basis, x.col(i), dim, x, &mut proj_sq);
            for _ in 0..k {
                // Point with the largest projection norm onto span(basis).
                let mut best = usize::MAX;
                let mut best_p = f64::NEG_INFINITY;
                for (j, &sel) in selected.iter().enumerate() {
                    if !sel && proj_sq[j] > best_p {
                        best_p = proj_sq[j];
                        best = j;
                    }
                }
                if best == usize::MAX {
                    break;
                }
                selected[best] = true;
                chosen.push(best);
                if basis.len() < self.max_subspace_dim {
                    push_orthonormalized(&mut basis, x.col(best), dim, x, &mut proj_sq);
                }
            }
            chosen
        })
    }
}

/// Orthonormalizes `v` against `basis`, appends it if independent, and adds
/// its contribution to every point's squared projection norm.
fn push_orthonormalized(
    basis: &mut Vec<Vec<f64>>,
    v: &[f64],
    dim: usize,
    x: &Matrix,
    proj_sq: &mut [f64],
) {
    let mut u = v.to_vec();
    for b in basis.iter() {
        let c = vector::dot(b, &u);
        vector::axpy(-c, b, &mut u);
    }
    if vector::normalize(&mut u, 1e-10) <= 1e-10 || basis.len() >= dim {
        return;
    }
    for (j, p) in proj_sq.iter_mut().enumerate() {
        let c = vector::dot(&u, x.col(j));
        *p += c * c;
    }
    basis.push(u);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SubspaceModel;
    use fedsc_clustering::clustering_accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn neighbors_stay_in_subspace_for_orthogonal_planes() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SubspaceModel::random(&mut rng, 40, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[15, 15], 0.0);
        let g = Nsn::new(5, 3).affinity(&ds.data).unwrap();
        let mut cross = 0usize;
        let mut total = 0usize;
        for i in 0..30 {
            for j in 0..30 {
                if g.weight(i, j) > 0.0 {
                    total += 1;
                    if ds.labels[i] != ds.labels[j] {
                        cross += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            (cross as f64) < 0.1 * total as f64,
            "{cross}/{total} cross edges"
        );
    }

    #[test]
    fn clusters_well_separated_subspaces() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = SubspaceModel::random(&mut rng, 30, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[15, 15, 15], 0.0);
        let labels = Nsn::new(6, 3).cluster(&ds.data, 3, &mut rng).unwrap();
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn neighbor_count_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SubspaceModel::random(&mut rng, 10, 2, 1);
        let ds = model.sample_dataset(&mut rng, &[8], 0.0);
        let g = Nsn::new(3, 2).affinity(&ds.data).unwrap();
        // Each row has at most 3 outgoing picks; symmetrization can add
        // more, but the graph stays sparse relative to complete.
        let n = g.len();
        let edges: usize = (0..n)
            .map(|i| (0..n).filter(|&j| g.weight(i, j) > 0.0).count())
            .sum();
        assert!(edges < n * (n - 1));
    }

    #[test]
    fn tiny_dataset_is_defined() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = SubspaceModel::random(&mut rng, 5, 1, 1);
        let ds = model.sample_dataset(&mut rng, &[2], 0.0);
        let g = Nsn::new(5, 2).affinity(&ds.data).unwrap();
        assert_eq!(g.len(), 2);
    }
}
