//! # fedsc-subspace
//!
//! The union-of-subspaces data model, the five centralized subspace-
//! clustering baselines from the paper's evaluation, and the Section V
//! theory quantities.
//!
//! * [`model`] — union-of-subspaces generator (paper Section VI-A).
//! * [`algo::SubspaceClusterer`] — shared affinity-graph + spectral
//!   interface.
//! * [`ssc`] — Sparse Subspace Clustering (Lasso, paper Eq. (2)).
//! * [`tsc`] — Thresholding-based SC (spherical q-NN), with the paper's `q`
//!   selection rules.
//! * [`sscomp`] — SSC by Orthogonal Matching Pursuit.
//! * [`ensc`] — Elastic-net SC with oracle active sets.
//! * [`nsn`] — greedy Nearest Subspace Neighbor.
//! * [`neighbors`] — deterministic total-order top-`k` selection shared by
//!   the neighborhood methods and the candidate pipeline.
//! * [`candidates`] — sketched candidate neighborhoods for subquadratic SSC
//!   (selection stage; solving/certification lives in `fedsc-sparse`).
//! * [`theory`] — SEP / exact-clustering checkers, active sets,
//!   heterogeneity summaries, inradius and incoherence estimators, and the
//!   closed-form affinity bounds of Corollaries 1–2.

#![warn(missing_docs)]

pub mod algo;
pub mod candidates;
pub mod ensc;
pub mod model;
pub mod neighbors;
pub mod nsn;
pub mod ssc;
pub mod sscomp;
pub mod theory;
pub mod tsc;

pub use algo::SubspaceClusterer;
pub use candidates::CandidateOptions;
pub use ensc::Ensc;
pub use model::{LabeledData, SubspaceModel};
pub use nsn::Nsn;
pub use ssc::Ssc;
pub use sscomp::SscOmp;
pub use tsc::Tsc;
