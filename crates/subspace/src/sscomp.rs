//! SSC-OMP (You, Robinson & Vidal, CVPR 2016): sparse self-expression by
//! Orthogonal Matching Pursuit instead of the Lasso — the scalability
//! baseline in the paper's Table III.

use crate::algo::{normalize_data, SubspaceClusterer};
use fedsc_graph::AffinityGraph;
use fedsc_linalg::{Matrix, Result};
use fedsc_sparse::omp::{omp, OmpOptions};

/// SSC-OMP configuration.
#[derive(Debug, Clone)]
pub struct SscOmp {
    /// OMP options (support budget `k_max`, residual tolerance).
    pub omp: OmpOptions,
    /// Normalize columns before coding.
    pub normalize: bool,
}

impl Default for SscOmp {
    fn default() -> Self {
        Self {
            omp: OmpOptions {
                k_max: 10,
                tol: 1e-6,
            },
            normalize: true,
        }
    }
}

impl SscOmp {
    /// SSC-OMP with a per-point support budget.
    pub fn with_sparsity(k_max: usize) -> Self {
        Self {
            omp: OmpOptions { k_max, tol: 1e-6 },
            normalize: true,
        }
    }

    /// Computes the OMP self-expression coefficient matrix.
    pub fn coefficients(&self, data: &Matrix) -> Result<Matrix> {
        let x = if self.normalize {
            normalize_data(data)
        } else {
            data.clone()
        };
        let n = x.cols();
        let mut c = Matrix::zeros(n, n);
        for i in 0..n {
            let code = omp(&x, x.col(i).to_vec().as_slice(), i, &self.omp)?;
            for (j, v) in code.iter() {
                c[(j, i)] = v;
            }
        }
        Ok(c)
    }
}

impl SubspaceClusterer for SscOmp {
    fn name(&self) -> &'static str {
        "SSC-OMP"
    }

    fn affinity(&self, data: &Matrix) -> Result<AffinityGraph> {
        Ok(AffinityGraph::from_coefficients(&self.coefficients(data)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SubspaceModel;
    use fedsc_clustering::clustering_accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn codes_have_bounded_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SubspaceModel::random(&mut rng, 20, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[10, 10], 0.0);
        let algo = SscOmp::with_sparsity(3);
        let c = algo.coefficients(&ds.data).unwrap();
        for i in 0..20 {
            let nnz = (0..20).filter(|&j| c[(j, i)] != 0.0).count();
            assert!(nnz <= 3, "column {i} has support {nnz}");
            assert_eq!(c[(i, i)], 0.0);
        }
    }

    #[test]
    fn clusters_well_separated_subspaces() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = SubspaceModel::random(&mut rng, 30, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[15, 15, 15], 0.0);
        let labels = SscOmp::with_sparsity(3)
            .cluster(&ds.data, 3, &mut rng)
            .unwrap();
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn sep_approximately_holds_for_near_orthogonal_subspaces() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SubspaceModel::random(&mut rng, 40, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[12, 12], 0.0);
        let g = SscOmp::with_sparsity(3).affinity(&ds.data).unwrap();
        let mut cross = 0.0f64;
        for i in 0..24 {
            for j in 0..24 {
                if ds.labels[i] != ds.labels[j] {
                    cross = cross.max(g.weight(i, j));
                }
            }
        }
        assert!(cross < 0.05, "max cross-subspace affinity {cross}");
    }
}
