//! Section V of the paper: the quantities behind Theorems 1–2 and
//! Corollaries 1–2, plus checkers for the SEP / exact-clustering criteria.
//!
//! Two of the paper's quantities are defined through optimization problems
//! that are expensive (or NP-hard) to evaluate exactly; we provide the
//! standard estimators and document the direction of the approximation:
//!
//! * **Subspace incoherence** (Definition 1) needs the dual direction
//!   `nu(x, X_{-i}) = argmax <x, nu> s.t. ||X^T nu||_inf <= 1`. We use the
//!   Lasso dual certificate `nu = lambda (x - X c*)` with large `lambda`,
//!   which converges to an optimal dual point as `lambda -> inf`.
//! * **Inradius** (Definition 4) of the symmetrized convex hull
//!   `P(X) = conv(+-x_1, ..., +-x_N)` restricted to its span equals
//!   `min_{w in span, ||w|| = 1} max_j |<x_j, w>|`. Exact evaluation is
//!   NP-hard in general; we run projected subgradient descent from many
//!   random restarts, which yields an **upper bound** that is tight in
//!   practice for the small instances the checkers run on.

use crate::model::SubspaceModel;
use fedsc_graph::AffinityGraph;
use fedsc_linalg::qr::orthonormal_basis;
use fedsc_linalg::{angles, vector, Matrix, Result};
use fedsc_sparse::lasso::{LassoOptions, LassoSolver};
use rand::Rng;

/// Largest affinity-graph weight between points of different ground-truth
/// clusters — `0` exactly when the self-expressiveness property holds.
pub fn sep_violation(graph: &AffinityGraph, truth: &[usize]) -> f64 {
    assert_eq!(graph.len(), truth.len(), "labeling must cover every node");
    let n = graph.len();
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..i {
            if truth[i] != truth[j] {
                worst = worst.max(graph.weight(i, j));
            }
        }
    }
    worst
}

/// Whether SEP holds up to a weight tolerance.
pub fn holds_sep(graph: &AffinityGraph, truth: &[usize], eps: f64) -> bool {
    sep_violation(graph, truth) <= eps
}

/// The paper's *exact clustering* criterion: SEP **and** every ground-truth
/// cluster forms a single connected component of the affinity graph.
pub fn holds_exact_clustering(graph: &AffinityGraph, truth: &[usize], eps: f64) -> bool {
    if !holds_sep(graph, truth, eps) {
        return false;
    }
    let max_label = truth.iter().copied().max().map_or(0, |m| m + 1);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); max_label];
    for (i, &l) in truth.iter().enumerate() {
        members[l].push(i);
    }
    members
        .into_iter()
        .filter(|m| !m.is_empty())
        .all(|nodes| graph.subgraph(&nodes).num_components(eps) == 1)
}

/// Definition 2: the active set `alpha(l)` of each subspace, from per-device
/// ground-truth labels. `device_labels[z]` holds the subspace index of each
/// point on device `z`. Returns `active[l] = sorted set of k != l` that
/// co-occur with `l` on at least one device.
pub fn active_sets(device_labels: &[Vec<usize>], num_subspaces: usize) -> Vec<Vec<usize>> {
    let mut active = vec![std::collections::BTreeSet::new(); num_subspaces];
    for labels in device_labels {
        let mut present = std::collections::BTreeSet::new();
        for &l in labels {
            assert!(l < num_subspaces, "label {l} out of range");
            present.insert(l);
        }
        for &a in &present {
            for &b in &present {
                if a != b {
                    active[a].insert(b);
                }
            }
        }
    }
    active
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect()
}

/// Statistical-heterogeneity summary of a device partition: per-subspace
/// device counts `Z_l` and per-device cluster counts `L^(z)`; the paper's
/// footnote identity `sum_z L^(z) = sum_l Z_l` holds by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heterogeneity {
    /// `Z_l`: number of devices holding data from subspace `l`.
    pub devices_per_subspace: Vec<usize>,
    /// `L^(z)`: number of distinct subspaces present on device `z`.
    pub subspaces_per_device: Vec<usize>,
}

impl Heterogeneity {
    /// Computes the summary from per-device labels.
    pub fn from_device_labels(device_labels: &[Vec<usize>], num_subspaces: usize) -> Self {
        let mut z_l = vec![0usize; num_subspaces];
        let mut l_z = Vec::with_capacity(device_labels.len());
        for labels in device_labels {
            let mut present = vec![false; num_subspaces];
            for &l in labels {
                present[l] = true;
            }
            let count = present.iter().filter(|&&p| p).count();
            l_z.push(count);
            for (l, &p) in present.iter().enumerate() {
                if p {
                    z_l[l] += 1;
                }
            }
        }
        Self {
            devices_per_subspace: z_l,
            subspaces_per_device: l_z,
        }
    }

    /// The paper's heterogeneity notion: some device sees fewer than all
    /// subspaces.
    pub fn is_heterogeneous(&self, num_subspaces: usize) -> bool {
        self.subspaces_per_device.iter().any(|&l| l < num_subspaces)
    }
}

/// Estimates the inradius of `P(X_{-i})` within `span(X_{-i})` via projected
/// subgradient descent with random restarts (an upper bound on the true
/// inradius; see module docs).
pub fn inradius_estimate<R: Rng + ?Sized>(
    x: &Matrix,
    exclude: Option<usize>,
    restarts: usize,
    rng: &mut R,
) -> Result<f64> {
    let cols: Vec<usize> = (0..x.cols()).filter(|&j| Some(j) != exclude).collect();
    if cols.is_empty() {
        return Ok(0.0);
    }
    let sub = x.select_columns(&cols);
    // Work in span coordinates: y_j = U^T x_j.
    let u = orthonormal_basis(&sub, 1e-10)?;
    let d = u.cols();
    if d == 0 {
        return Ok(0.0);
    }
    let y = u.tr_matmul(&sub)?;
    let m = y.cols();
    let h = |v: &[f64]| -> (f64, usize, f64) {
        let mut best = 0.0f64;
        let mut arg = 0usize;
        let mut sgn = 1.0f64;
        for j in 0..m {
            let c = vector::dot(y.col(j), v);
            if c.abs() > best {
                best = c.abs();
                arg = j;
                sgn = c.signum();
            }
        }
        (best, arg, sgn)
    };
    let mut best_val = f64::INFINITY;
    for _ in 0..restarts.max(1) {
        let mut v = fedsc_linalg::random::unit_sphere(rng, d);
        let mut step = 0.1;
        for _ in 0..200 {
            let (val, arg, sgn) = h(&v);
            best_val = best_val.min(val);
            // Subgradient of max_j |<y_j, v>| is sgn * y_arg; descend and
            // re-project to the unit sphere.
            let g = y.col(arg);
            for (vi, &gi) in v.iter_mut().zip(g) {
                *vi -= step * sgn * gi;
            }
            if vector::normalize(&mut v, 1e-12) <= 1e-12 {
                break;
            }
            step *= 0.98;
        }
        best_val = best_val.min(h(&v).0);
    }
    Ok(best_val)
}

/// Estimates the subspace incoherence `mu(X_l)` (Definition 1) for points
/// `x_l` lying on a subspace with orthonormal basis `basis_l`, against the
/// competitor points `others` (Definition 3 uses only the active set's
/// points; pass those for the *active* incoherence `mu~`).
///
/// The dual direction of each point is approximated by the Lasso dual
/// certificate at `lambda = dual_lambda` (larger is tighter).
pub fn incoherence_estimate(
    x_l: &Matrix,
    basis_l: &Matrix,
    others: &Matrix,
    dual_lambda: f64,
) -> Result<f64> {
    let n_l = x_l.cols();
    if n_l < 2 || others.cols() == 0 {
        return Ok(0.0);
    }
    let gram = x_l.gram();
    let solver = LassoSolver::new(&gram, LassoOptions::default());
    // V_l columns: projected, normalized dual directions.
    let mut v_cols: Vec<Vec<f64>> = Vec::with_capacity(n_l);
    for i in 0..n_l {
        let b = gram.col(i);
        let code = solver.solve(b, dual_lambda, i)?.to_dense();
        // nu = lambda (x_i - X c); project onto span(basis_l), normalize.
        let fit = x_l.matvec(&code)?;
        let mut nu: Vec<f64> = x_l
            .col(i)
            .iter()
            .zip(&fit)
            .map(|(&xi, &fi)| dual_lambda * (xi - fi))
            .collect();
        let coeffs = basis_l.tr_matvec(&nu)?;
        nu = basis_l.matvec(&coeffs)?;
        if vector::normalize(&mut nu, 1e-12) > 1e-12 {
            v_cols.push(nu);
        }
    }
    // mu = max over external points of ||V_l^T x||_inf.
    let mut mu = 0.0f64;
    for j in 0..others.cols() {
        let x = others.col(j);
        for v in &v_cols {
            mu = mu.max(vector::dot(v, x).abs());
        }
    }
    Ok(mu.min(1.0))
}

/// Corollary 1's sufficient bound on the maximum pairwise affinity for
/// Fed-SC (SSC), with explicit constants `c` and `t`:
/// `max aff < c sqrt(d log((Z' - 1) / d)) / (t log[L r' Z' (r' Z' + 1)])`.
/// Returns 0 when the logarithms are out of domain (too few devices).
pub fn ssc_affinity_bound(d: usize, l: usize, r_max: usize, z_prime: usize, c: f64, t: f64) -> f64 {
    if z_prime < 2 || d == 0 {
        return 0.0;
    }
    let ratio = (z_prime as f64 - 1.0) / d as f64;
    if ratio <= 1.0 {
        return 0.0;
    }
    let num = c * (d as f64 * ratio.ln()).sqrt();
    let rz = r_max as f64 * z_prime as f64;
    let den = t * (l as f64 * rz * (rz + 1.0)).ln();
    if den <= 0.0 {
        return 0.0;
    }
    num / den
}

/// Corollary 2's sufficient bound for Fed-SC (TSC):
/// `max aff <= sqrt(d) / (15 log(L r' Z'))`.
pub fn tsc_affinity_bound(d: usize, l: usize, r_max: usize, z_prime: usize) -> f64 {
    let arg = l as f64 * r_max as f64 * z_prime as f64;
    if arg <= 1.0 {
        return 0.0;
    }
    (d as f64).sqrt() / (15.0 * arg.ln())
}

/// Theorem 2's admissible TSC parameter range
/// `q in [c1 log(r' max_l Z_l), min_l Z_l / 6]` with
/// `c1 = 18 (12 pi)^(max_l d_l - 1)`; `None` when the interval is empty
/// (the paper's point: `Z_l` must be exponential in `d_l`).
pub fn tsc_q_range(d_max: usize, r_max: usize, z_max: usize, z_min: usize) -> Option<(f64, f64)> {
    let c1 = 18.0 * (12.0 * std::f64::consts::PI).powi(d_max.saturating_sub(1) as i32);
    let lo = c1 * ((r_max as f64 * z_max as f64).max(1.0)).ln();
    let hi = z_min as f64 / 6.0;
    (lo <= hi).then_some((lo, hi))
}

/// Checks the *global semi-random condition* of Corollary 1/2 for a concrete
/// subspace model: compares every pairwise affinity against the closed-form
/// bound. Returns the worst margin `bound - aff` (positive = satisfied).
pub fn semi_random_margin(model: &SubspaceModel, bound: f64) -> Result<f64> {
    let l = model.num_subspaces();
    let mut worst = f64::INFINITY;
    for a in 0..l {
        for b in a + 1..l {
            let aff = angles::subspace_affinity(&model.bases[a], &model.bases[b])?;
            worst = worst.min(bound - aff);
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> AffinityGraph {
        let mut m = Matrix::zeros(n, n);
        for &(i, j) in edges {
            m[(i, j)] = 1.0;
            m[(j, i)] = 1.0;
        }
        AffinityGraph::from_symmetric(&m)
    }

    #[test]
    fn sep_detects_cross_edges() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        assert!(holds_sep(&g, &[0, 0, 1, 1], 0.0));
        let bad = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(!holds_sep(&bad, &[0, 0, 1, 1], 0.0));
        assert_eq!(sep_violation(&bad, &[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn exact_clustering_requires_connectivity() {
        // SEP holds but cluster 0 splits into two components.
        let g = graph_from_edges(5, &[(0, 1), (3, 4)]);
        let truth = [0, 0, 0, 1, 1];
        assert!(holds_sep(&g, &truth, 0.0));
        assert!(!holds_exact_clustering(&g, &truth, 0.0));
        // Connecting node 2 restores exact clustering.
        let g2 = graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert!(holds_exact_clustering(&g2, &truth, 0.0));
    }

    #[test]
    fn active_sets_from_figure_one() {
        // Fig. 1's setting: 4 subspaces, 4 devices, each device holds two
        // consecutive subspaces.
        let device_labels = vec![
            vec![0, 0, 1, 1],
            vec![1, 1, 2, 2],
            vec![2, 2, 3, 3],
            vec![3, 3, 0, 0],
        ];
        let active = active_sets(&device_labels, 4);
        assert_eq!(active[0], vec![1, 3]);
        assert_eq!(active[1], vec![0, 2]);
        assert_eq!(active[2], vec![1, 3]);
        assert_eq!(active[3], vec![0, 2]);
        let het = Heterogeneity::from_device_labels(&device_labels, 4);
        assert_eq!(het.devices_per_subspace, vec![2, 2, 2, 2]);
        assert_eq!(het.subspaces_per_device, vec![2, 2, 2, 2]);
        assert!(het.is_heterogeneous(4));
        // Footnote identity: sum L^(z) = sum Z_l.
        let s1: usize = het.subspaces_per_device.iter().sum();
        let s2: usize = het.devices_per_subspace.iter().sum();
        assert_eq!(s1, s2);
    }

    #[test]
    fn homogeneous_partition_is_not_heterogeneous() {
        let device_labels = vec![vec![0, 1], vec![0, 1]];
        let het = Heterogeneity::from_device_labels(&device_labels, 2);
        assert!(!het.is_heterogeneous(2));
    }

    #[test]
    fn inradius_of_orthonormal_cross_polytope() {
        // P(I_2) = conv(+-e1, +-e2): inradius 1/sqrt(2).
        let x = Matrix::identity(2);
        let mut rng = StdRng::seed_from_u64(1);
        let r = inradius_estimate(&x, None, 20, &mut rng).unwrap();
        assert!(
            (r - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3,
            "r = {r}"
        );
    }

    #[test]
    fn inradius_shrinks_for_skewed_data() {
        // Fig. 3's message: well-dispersed data has larger inradius than
        // skewed data. Compare a 4-direction spread against two nearly
        // collinear directions in the plane.
        let spread = Matrix::from_columns(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[
                std::f64::consts::FRAC_1_SQRT_2,
                std::f64::consts::FRAC_1_SQRT_2,
            ],
            &[
                std::f64::consts::FRAC_1_SQRT_2,
                -std::f64::consts::FRAC_1_SQRT_2,
            ],
        ])
        .unwrap();
        let skewed = Matrix::from_columns(&[&[1.0, 0.0], &[0.999, 0.045]]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let r_spread = inradius_estimate(&spread, None, 20, &mut rng).unwrap();
        let r_skewed = inradius_estimate(&skewed, None, 20, &mut rng).unwrap();
        assert!(r_spread > 2.0 * r_skewed, "{r_spread} vs {r_skewed}");
    }

    #[test]
    fn incoherence_zero_for_orthogonal_subspaces() {
        // Example 1 of the paper.
        let mut x_l = Matrix::zeros(4, 3);
        x_l[(0, 0)] = 1.0;
        x_l[(1, 1)] = 1.0;
        let s = std::f64::consts::FRAC_1_SQRT_2;
        x_l[(0, 2)] = s;
        x_l[(1, 2)] = s;
        let mut basis = Matrix::zeros(4, 2);
        basis[(0, 0)] = 1.0;
        basis[(1, 1)] = 1.0;
        // Others live in span{e2, e3}.
        let mut others = Matrix::zeros(4, 2);
        others[(2, 0)] = 1.0;
        others[(3, 1)] = 1.0;
        let mu = incoherence_estimate(&x_l, &basis, &others, 1e4).unwrap();
        assert!(mu < 1e-8, "mu = {mu}");
    }

    #[test]
    fn incoherence_positive_for_overlapping_subspaces() {
        let mut x_l = Matrix::zeros(3, 3);
        x_l[(0, 0)] = 1.0;
        x_l[(1, 1)] = 1.0;
        let s = std::f64::consts::FRAC_1_SQRT_2;
        x_l[(0, 2)] = s;
        x_l[(1, 2)] = s;
        let mut basis = Matrix::zeros(3, 2);
        basis[(0, 0)] = 1.0;
        basis[(1, 1)] = 1.0;
        // A competitor point sharing direction e0.
        let others = Matrix::from_columns(&[&[s, 0.0, s]]).unwrap();
        let mu = incoherence_estimate(&x_l, &basis, &others, 1e4).unwrap();
        assert!(mu > 0.3, "mu = {mu}");
    }

    #[test]
    fn affinity_bounds_shrink_with_more_devices() {
        // Corollary 1/2 discussion: the admissible affinity decreases as Z'
        // grows (log in the denominator dominates).
        let b1 = ssc_affinity_bound(5, 20, 3, 50, 1.0, 1.0);
        let b2 = ssc_affinity_bound(5, 20, 3, 5000, 1.0, 1.0);
        assert!(b1 > 0.0 && b2 > 0.0);
        let t1 = tsc_affinity_bound(5, 20, 3, 50);
        let t2 = tsc_affinity_bound(5, 20, 3, 5000);
        assert!(t1 > t2, "{t1} vs {t2}");
        assert_eq!(ssc_affinity_bound(5, 20, 3, 1, 1.0, 1.0), 0.0);
    }

    #[test]
    fn tsc_q_range_needs_exponentially_many_devices() {
        // d = 1: modest requirement; range exists for moderate Z.
        assert!(tsc_q_range(1, 3, 1000, 1000).is_some());
        // d = 5: c1 = 18 (12 pi)^4 ~ 3.6e7 — the range is empty for any
        // realistic device count (the paper's Theorem 2 caveat).
        assert!(tsc_q_range(5, 3, 1000, 1000).is_none());
    }

    #[test]
    fn semi_random_margin_sign() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = SubspaceModel::random(&mut rng, 100, 2, 3);
        // Random planes in R^100 have tiny affinity: a bound of 0.5 is met.
        assert!(semi_random_margin(&model, 0.5).unwrap() > 0.0);
        // An impossible bound of 0 fails (affinity is non-negative and
        // almost surely positive).
        assert!(semi_random_margin(&model, 0.0).unwrap() <= 0.0);
    }
}
