//! Thresholding-based Subspace Clustering (Heckel & Bölcskei, IT 2015).
//!
//! Connects each point to its `q` nearest neighbors in *spherical* distance
//! (largest `|<x_i, x_j>|` for unit-norm points), with edge weight
//! `exp(-2 acos(|<x_i, x_j>|))`. Effective under the semi-random model
//! (uniform points on each subspace) — which is exactly why Fed-SC can run
//! TSC at the central server over its uniformly-sampled `theta`s.

use crate::algo::{normalize_data, SubspaceClusterer};
use crate::neighbors::ranked_neighbors;
use fedsc_graph::AffinityGraph;
use fedsc_linalg::{par, vector, Matrix, Result};

/// TSC configuration.
#[derive(Debug, Clone)]
pub struct Tsc {
    /// Number of nearest neighbors `q`.
    pub q: usize,
    /// Normalize columns before computing spherical distances.
    pub normalize: bool,
    /// Worker threads for the Gram product and the per-point neighbor
    /// searches. The affinity graph is bitwise identical for every value.
    pub threads: usize,
}

impl Tsc {
    /// TSC with the given neighbor count.
    pub fn new(q: usize) -> Self {
        Self {
            q,
            normalize: true,
            threads: 1,
        }
    }

    /// The paper's parameter rules: `q = max(3, ceil(Z / L))` for the
    /// central clustering inside Fed-SC…
    pub fn fed_sc_q(num_devices: usize, num_clusters: usize) -> usize {
        3usize.max(num_devices.div_ceil(num_clusters.max(1)))
    }

    /// …and `q = max(3, ceil(N / (100 L)))` for the centralized baseline.
    pub fn centralized_q(num_points: usize, num_clusters: usize) -> usize {
        3usize.max(num_points.div_ceil(100 * num_clusters.max(1)))
    }

    /// The `q` nearest spherical neighbors of every column (descending
    /// similarity) — TSC's selection stage via the shared deterministic
    /// ranking in [`crate::neighbors`], exposed so pipelines can reuse the
    /// search without building the dense affinity. The per-point scans fan
    /// out over `self.threads`; results are identical for every value.
    pub fn neighbor_sets(&self, data: &Matrix) -> Vec<Vec<usize>> {
        let x = if self.normalize {
            normalize_data(data)
        } else {
            data.clone()
        };
        let n = x.cols();
        let gram = x.gram_threaded(self.threads.max(1));
        par::par_map(n, self.threads.max(1), |i| {
            ranked_neighbors(n, self.q, i, |j| gram[(i, j)].abs().min(1.0))
                .into_iter()
                .map(|(_, j)| j)
                .collect()
        })
    }
}

impl Default for Tsc {
    fn default() -> Self {
        Self::new(3)
    }
}

impl SubspaceClusterer for Tsc {
    fn name(&self) -> &'static str {
        "TSC"
    }

    fn affinity(&self, data: &Matrix) -> Result<AffinityGraph> {
        let x = if self.normalize {
            normalize_data(data)
        } else {
            data.clone()
        };
        let n = x.cols();
        // Precompute |cos| similarities once; the kNN constructor consults
        // them O(n^2 log n) times otherwise.
        let gram = x.gram_threaded(self.threads.max(1));
        Ok(AffinityGraph::from_knn_similarity_threaded(
            n,
            self.q,
            self.threads.max(1),
            |i, j| {
                let c = gram[(i, j)].abs().min(1.0);
                (-2.0 * c.acos()).exp()
            },
        ))
    }
}

/// Spherical distance helper exposed for tests: `acos(|cos|)` in `[0, pi/2]`.
pub fn spherical_distance(a: &[f64], b: &[f64]) -> f64 {
    vector::abs_cosine(a, b).acos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SubspaceModel;
    use fedsc_clustering::clustering_accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn q_rules_match_paper() {
        assert_eq!(Tsc::fed_sc_q(400, 20), 20);
        assert_eq!(Tsc::fed_sc_q(10, 20), 3);
        assert_eq!(Tsc::centralized_q(6000, 20), 3);
        assert_eq!(Tsc::centralized_q(100_000, 20), 50);
    }

    #[test]
    fn neighbors_prefer_same_subspace() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SubspaceModel::random(&mut rng, 30, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[20, 20], 0.0);
        let g = Tsc::new(4).affinity(&ds.data).unwrap();
        // Count cross-subspace edges: should be rare for near-orthogonal
        // subspaces with plenty of same-subspace neighbors.
        let mut cross = 0usize;
        let mut total = 0usize;
        for i in 0..40 {
            for j in 0..40 {
                if g.weight(i, j) > 0.0 {
                    total += 1;
                    if ds.labels[i] != ds.labels[j] {
                        cross += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            (cross as f64) < 0.05 * total as f64,
            "{cross} cross edges out of {total}"
        );
    }

    #[test]
    fn clusters_uniform_subspace_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = SubspaceModel::random(&mut rng, 30, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[25, 25, 25], 0.0);
        let labels = Tsc::new(5).cluster(&ds.data, 3, &mut rng).unwrap();
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn spherical_distance_extremes() {
        assert!(spherical_distance(&[1.0, 0.0], &[2.0, 0.0]) < 1e-9);
        let d = spherical_distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        // Antipodal points are spherically identical (|cos| symmetry).
        assert!(spherical_distance(&[1.0, 0.0], &[-1.0, 0.0]) < 1e-9);
    }

    #[test]
    fn neighbor_sets_agree_with_affinity_edges() {
        // The extracted selection stage must pick exactly the outgoing
        // edges the affinity constructor keeps (before max-symmetrization).
        let mut rng = StdRng::seed_from_u64(5);
        let model = SubspaceModel::random(&mut rng, 20, 2, 2);
        let ds = model.sample_dataset(&mut rng, &[12, 12], 0.0);
        let tsc = Tsc::new(4);
        let sets = tsc.neighbor_sets(&ds.data);
        let g = tsc.affinity(&ds.data).unwrap();
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(set.len(), 4);
            for &j in set {
                assert!(g.weight(i, j) > 0.0, "pick ({i},{j}) missing from graph");
            }
        }
        // Thread fan-out must not change the picks.
        let mut threaded = Tsc::new(4);
        threaded.threads = 4;
        assert_eq!(threaded.neighbor_sets(&ds.data), sets);
    }

    #[test]
    fn q_larger_than_n_is_clamped() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SubspaceModel::random(&mut rng, 10, 2, 1);
        let ds = model.sample_dataset(&mut rng, &[4], 0.0);
        let g = Tsc::new(100).affinity(&ds.data).unwrap();
        assert_eq!(g.len(), 4);
    }
}
