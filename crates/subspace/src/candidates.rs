//! Sketched candidate neighborhoods — the selection stage of the
//! subquadratic SSC pipeline.
//!
//! Dense SSC is quadratic twice over: the `n x n` Gram and `n` Lasso solves
//! over `n - 1` atoms each. The pipeline replaces both with three stages:
//!
//! 1. **Sketch** (`fedsc_linalg::sketch`): compress the data to `s << d`
//!    rows with a seeded Johnson–Lindenstrauss sign projection.
//! 2. **Select** (this module): score each pair in the sketch space
//!    (panel-blocked `S^T S_panel` products on the worker pool) and keep the
//!    `k` most correlated peers per point — sketched scores only ever
//!    *rank*; nothing numeric survives into the solves.
//! 3. **Solve + certify** (`fedsc_sparse::restricted`): per-point Lasso
//!    over the `k` candidates on the exact data, with an exact
//!    full-dictionary KKT certificate and deterministic escalation, so the
//!    final codes match the dense path's optima regardless of sketch
//!    quality — a bad sketch costs time, never correctness.
//!
//! Selection is deterministic and bitwise thread-invariant: the sketch is
//! seeded, the scoring products are the pool's invariant kernels, and the
//! top-`k` cut uses the total-order ranking of [`crate::neighbors`].

use crate::neighbors::top_k_indices;
use fedsc_linalg::sketch::sign_sketch;
use fedsc_linalg::{par, Matrix, Result};

/// Columns scored per blocked `S^T S_panel` product.
const SCORE_PANEL: usize = 512;

/// Configuration of the sketched candidate-selection stage.
#[derive(Debug, Clone)]
pub struct CandidateOptions {
    /// Candidate atoms per point (the restricted Lasso dictionary size).
    pub k: usize,
    /// Sketch dimension `s` (rows of the sign projection).
    pub sketch_dim: usize,
    /// Seed of the sign projection (part of the run's determinism contract).
    pub seed: u64,
    /// Minimum point count before the candidate path engages; below it the
    /// dense path is bitwise unchanged and already fast.
    pub min_points: usize,
    /// Run the exact full-dictionary certificate and escalate uncertified
    /// points until every code is a full-dictionary optimum (the default).
    /// `false` skips verification entirely: codes are the restricted optima
    /// over the sketched candidates — the screening-only mode whose cost is
    /// genuinely subquadratic in the solve stage (the certificate is exact
    /// and therefore `O(n d)` per point; see `fedsc_sparse::restricted`).
    pub verify: bool,
}

impl Default for CandidateOptions {
    fn default() -> Self {
        Self {
            k: 64,
            sketch_dim: 32,
            seed: 0x5ce7_c8ed,
            min_points: 2048,
            verify: true,
        }
    }
}

/// Selects the `k` candidate atoms per point by sketched |inner product|.
///
/// Returns one strictly ascending candidate list per point, never containing
/// the point itself — exactly the shape `fedsc_sparse::restricted`
/// consumes. Bitwise thread-invariant for every `threads`.
pub fn select_candidates(
    x: &Matrix,
    opts: &CandidateOptions,
    threads: usize,
) -> Result<Vec<Vec<usize>>> {
    let n = x.cols();
    let threads = threads.max(1);
    let k = opts.k.min(n.saturating_sub(1));
    if n == 0 {
        return Ok(vec![]);
    }
    let sk = sign_sketch(x, opts.sketch_dim.max(1), opts.seed, threads);
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(n);
    let panels = n.div_ceil(SCORE_PANEL);
    for panel in 0..panels {
        let p0 = panel * SCORE_PANEL;
        let p1 = ((panel + 1) * SCORE_PANEL).min(n);
        let cols: Vec<usize> = (p0..p1).collect();
        let block = sk.select_columns(&cols);
        // scores: n x p, column q holds every point's sketched correlation
        // with point p0 + q.
        let scores = sk.tr_matmul_threaded(&block, threads)?;
        let picks = par::par_map_heavy(p1 - p0, threads, |q| {
            let col = scores.col(q);
            top_k_indices(n, k, p0 + q, |j| col[j].abs())
        });
        candidates.extend(picks);
    }
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SubspaceModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn candidates_are_ascending_and_exclude_self() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SubspaceModel::random(&mut rng, 20, 2, 2);
        let ds = model.sample_dataset(&mut rng, &[30, 30], 0.0);
        let opts = CandidateOptions {
            k: 7,
            ..Default::default()
        };
        let cands = select_candidates(&ds.data, &opts, 1).unwrap();
        assert_eq!(cands.len(), 60);
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.len(), 7);
            assert!(c.windows(2).all(|w| w[0] < w[1]), "point {i} not ascending");
            assert!(!c.contains(&i), "point {i} contains itself");
        }
    }

    #[test]
    fn mostly_same_subspace_neighbors() {
        // For well-separated subspaces the sketched ranking should put most
        // candidates in the point's own subspace — that's the whole premise
        // of subquadratic selection (correctness never depends on it).
        let mut rng = StdRng::seed_from_u64(2);
        let model = SubspaceModel::random(&mut rng, 40, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[40, 40], 0.0);
        let opts = CandidateOptions {
            k: 10,
            sketch_dim: 24,
            ..Default::default()
        };
        let cands = select_candidates(&ds.data, &opts, 1).unwrap();
        let mut same = 0usize;
        let mut total = 0usize;
        for (i, c) in cands.iter().enumerate() {
            for &j in c {
                total += 1;
                if ds.labels[i] == ds.labels[j] {
                    same += 1;
                }
            }
        }
        assert!(
            same * 10 > total * 7,
            "only {same}/{total} same-subspace candidates"
        );
    }

    #[test]
    fn thread_invariant_and_panel_boundary_safe() {
        // 600 points straddles the 512-column scoring panel.
        let mut rng = StdRng::seed_from_u64(3);
        let model = SubspaceModel::random(&mut rng, 12, 2, 3);
        let ds = model.sample_dataset(&mut rng, &[200, 200, 200], 0.01);
        let opts = CandidateOptions {
            k: 12,
            ..Default::default()
        };
        let serial = select_candidates(&ds.data, &opts, 1).unwrap();
        for threads in [2usize, 8] {
            let par = select_candidates(&ds.data, &opts, threads).unwrap();
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn k_clamped_for_tiny_n() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = SubspaceModel::random(&mut rng, 6, 1, 1);
        let ds = model.sample_dataset(&mut rng, &[3], 0.0);
        let cands = select_candidates(&ds.data, &CandidateOptions::default(), 1).unwrap();
        assert_eq!(cands.iter().map(Vec::len).max(), Some(2));
    }
}
