//! Sparse Subspace Clustering (Elhamifar & Vidal, TPAMI 2013).
//!
//! Each point is sparsely self-expressed by the remaining points (paper
//! Eq. (2), the Lasso form) with the per-point `lambda` rule
//! `lambda_i = alpha / max_{j != i} |x_j^T x_i|` (the paper uses
//! `alpha = 50`); the affinity graph is `|C| + |C|^T`.

use crate::algo::{normalize_data, SubspaceClusterer};
use crate::candidates::{select_candidates, CandidateOptions};
use fedsc_graph::{AffinityGraph, SparseAffinity};
use fedsc_linalg::{par, Matrix, Result};
use fedsc_sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver, LassoWorkspace};
use fedsc_sparse::restricted::{solve_candidates, CandidateOutcome};
use fedsc_sparse::SparseVec;

/// SSC configuration.
///
/// ```
/// use fedsc_subspace::{Ssc, SubspaceClusterer, SubspaceModel};
/// use fedsc_clustering::clustering_accuracy;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let model = SubspaceModel::random(&mut rng, 30, 3, 2);
/// let ds = model.sample_dataset(&mut rng, &[20, 20], 0.0);
/// let labels = Ssc::default().cluster(&ds.data, 2, &mut rng).unwrap();
/// assert!(clustering_accuracy(&ds.labels, &labels) > 95.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ssc {
    /// Multiplier in the per-point lambda rule (paper: 50).
    pub alpha: f64,
    /// Lasso solver options.
    pub lasso: LassoOptions,
    /// Normalize columns to unit norm before coding (paper's convention).
    pub normalize: bool,
    /// Subquadratic candidate pipeline (sketch → restricted solve → exact
    /// certificate). Engages only at `min_points` and above, so small
    /// problems keep the dense path bit for bit; `None` disables it
    /// entirely. Candidate codes are certified/escalated against the full
    /// dictionary, so accuracy matches the dense path either way.
    pub candidates: Option<CandidateOptions>,
}

impl Default for Ssc {
    fn default() -> Self {
        Self {
            alpha: 50.0,
            lasso: LassoOptions::default(),
            normalize: true,
            candidates: Some(CandidateOptions::default()),
        }
    }
}

impl Ssc {
    /// Computes the full self-expression coefficient matrix `C`
    /// (column `i` is the sparse code of point `i`; diagonal is zero).
    ///
    /// The `N` per-point Lasso problems are independent, so they fan out
    /// over `self.lasso.threads` workers (the Phase-1 hot path of the
    /// paper's complexity analysis). Each worker carries one
    /// [`LassoWorkspace`] reused across all the points it solves (warm
    /// scratch buffers, no per-point allocation), and each solve runs the
    /// gap-safe screened path — `||x_i||^2` is just `gram[(i, i)]`. Each
    /// point's solve is untouched by the fan-out and fully re-initializes
    /// its workspace values, so the coefficients are bitwise identical for
    /// every thread count.
    pub fn coefficients(&self, data: &Matrix) -> Result<Matrix> {
        let x = if self.normalize {
            normalize_data(data)
        } else {
            data.clone()
        };
        let n = x.cols();
        let threads = self.lasso.threads.max(1);
        let gram = x.gram_threaded(threads);
        let solver = LassoSolver::new(&gram, self.lasso.clone());
        let codes = par::par_map_with(n, threads, LassoWorkspace::new, |ws, i| {
            let b = gram.col(i);
            let lambda = ssc_lambda(b, i, self.alpha);
            solver.solve_screened(b, lambda, i, gram[(i, i)], ws)
        });
        let mut c = Matrix::zeros(n, n);
        for (i, code) in codes.into_iter().enumerate() {
            for (j, v) in code?.iter() {
                c[(j, i)] = v;
            }
        }
        Ok(c)
    }

    /// `true` when the candidate pipeline would handle `n` points.
    pub fn uses_candidates(&self, n: usize) -> bool {
        self.candidates
            .as_ref()
            .is_some_and(|c| n >= c.min_points.max(2))
    }

    /// Runs the full subquadratic pipeline — sketch, candidate selection,
    /// restricted solves, and (when `CandidateOptions::verify` is on, the
    /// default) exact certification/escalation — and returns the per-point
    /// codes plus certification stats. Ignores `min_points`: this is the
    /// explicit entry point (used by benches and the parity tests);
    /// [`Self::affinity`] applies the threshold.
    pub fn candidate_codes(&self, data: &Matrix) -> Result<CandidateOutcome> {
        let x = if self.normalize {
            normalize_data(data)
        } else {
            data.clone()
        };
        let threads = self.lasso.threads.max(1);
        let copts = self.candidates.clone().unwrap_or_default();
        let cands = select_candidates(&x, &copts, threads)?;
        solve_candidates(&x, &cands, self.alpha, &self.lasso, copts.verify)
    }

    /// Per-point sparse self-expression codes (column `i` of `C`) via the
    /// candidate pipeline.
    pub fn sparse_codes(&self, data: &Matrix) -> Result<Vec<SparseVec>> {
        Ok(self.candidate_codes(data)?.codes)
    }

    /// CSR affinity `|C| + |C|^T` via the candidate pipeline — the
    /// subquadratic counterpart of [`SubspaceClusterer::affinity`], feeding
    /// `fedsc_clustering::spectral_clustering_sparse` without ever
    /// materializing an `n x n` dense matrix.
    pub fn sparse_affinity(&self, data: &Matrix) -> Result<SparseAffinity> {
        Ok(SparseAffinity::from_codes(&self.sparse_codes(data)?))
    }
}

impl SubspaceClusterer for Ssc {
    fn name(&self) -> &'static str {
        "SSC"
    }

    fn affinity(&self, data: &Matrix) -> Result<AffinityGraph> {
        // Above the candidate threshold the subquadratic pipeline produces
        // the (exact, certified) codes; `to_graph` is bitwise lossless, so
        // consumers of the dense graph see the same affinity the CSR path
        // serves. Below it, the dense path is bitwise what it always was.
        if self.uses_candidates(data.cols()) {
            return Ok(self.sparse_affinity(data)?.to_graph());
        }
        Ok(AffinityGraph::from_coefficients(&self.coefficients(data)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SubspaceModel;
    use fedsc_clustering::clustering_accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn codes_have_zero_diagonal() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SubspaceModel::random(&mut rng, 10, 2, 2);
        let ds = model.sample_dataset(&mut rng, &[8, 8], 0.0);
        let c = Ssc::default().coefficients(&ds.data).unwrap();
        for i in 0..16 {
            assert_eq!(c[(i, i)], 0.0);
        }
    }

    #[test]
    fn sep_holds_for_orthogonal_subspaces() {
        // Two orthogonal planes: SSC codes must not cross subspaces.
        let mut rng = StdRng::seed_from_u64(2);
        let model = SubspaceModel::random(&mut rng, 30, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[12, 12], 0.0);
        let g = Ssc::default().affinity(&ds.data).unwrap();
        let mut cross = 0.0f64;
        for i in 0..24 {
            for j in 0..24 {
                if ds.labels[i] != ds.labels[j] {
                    cross = cross.max(g.weight(i, j));
                }
            }
        }
        // Random 3-dim subspaces in R^30 are near-orthogonal: essentially no
        // false connections.
        assert!(cross < 1e-3, "max cross-subspace affinity {cross}");
    }

    #[test]
    fn clusters_well_separated_subspaces() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SubspaceModel::random(&mut rng, 30, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[15, 15, 15], 0.0);
        let labels = Ssc::default().cluster(&ds.data, 3, &mut rng).unwrap();
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 95.0, "accuracy {acc}");
    }

    #[test]
    fn affinity_is_bitwise_invariant_to_thread_count() {
        // The per-point Lasso fan-out must not change a single bit of the
        // coefficients — same solves, same index-ordered assembly.
        let mut rng = StdRng::seed_from_u64(7);
        let model = SubspaceModel::random(&mut rng, 25, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[18, 18], 0.01);
        let serial = Ssc::default().affinity(&ds.data).unwrap();
        for threads in [2, 4, 8] {
            let mut ssc = Ssc::default();
            ssc.lasso.threads = threads;
            let par = ssc.affinity(&ds.data).unwrap();
            assert_eq!(
                par.matrix().as_slice(),
                serial.matrix().as_slice(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn candidate_affinity_routes_above_threshold() {
        // With the threshold lowered below n, `affinity` must route through
        // the sketch → candidates → certify pipeline and land on the dense
        // path's codes (the certificate guarantees it).
        let mut rng = StdRng::seed_from_u64(5);
        let model = SubspaceModel::random(&mut rng, 25, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[16, 16], 0.01);
        let cand_ssc = Ssc {
            candidates: Some(crate::candidates::CandidateOptions {
                k: 8,
                min_points: 4,
                ..Default::default()
            }),
            ..Ssc::default()
        };
        assert!(cand_ssc.uses_candidates(32));
        let dense_ssc = Ssc {
            candidates: None,
            ..Ssc::default()
        };
        let g_cand = cand_ssc.affinity(&ds.data).unwrap();
        let g_dense = dense_ssc.affinity(&ds.data).unwrap();
        for i in 0..32 {
            for j in 0..32 {
                let (a, b) = (g_cand.weight(i, j), g_dense.weight(i, j));
                assert!((a - b).abs() < 1e-4, "affinity ({i},{j}): {a} vs {b}");
            }
        }
        // The dense graph served above the threshold is exactly the CSR
        // affinity, densified.
        let sparse = cand_ssc.sparse_affinity(&ds.data).unwrap();
        for i in 0..32 {
            for j in 0..32 {
                assert_eq!(g_cand.weight(i, j).to_bits(), sparse.weight(i, j).to_bits());
            }
        }
    }

    #[test]
    fn tolerates_mild_noise() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = SubspaceModel::random(&mut rng, 30, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[15, 15], 0.02);
        let labels = Ssc::default().cluster(&ds.data, 2, &mut rng).unwrap();
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]
        // Satellite (3a): over seeded subspace mixtures, the sketched-
        // candidate pipeline must reproduce the dense path. Certified points
        // must match coefficient for coefficient. Escalated points satisfy
        // the same full-dictionary KKT conditions, but highly correlated
        // same-subspace atoms can make the Lasso optimum *non-unique* —
        // coordinate descent over the restricted vs. full dictionary may
        // then land on different vertices of the solution set. What IS
        // unique at a shared lambda is the fitted vector `X c` (the strictly
        // convex part of the objective), so that is the parity asserted for
        // every point.
        #[test]
        fn candidate_codes_match_dense_on_subspace_mixtures(
            seed in 0u64..1024,
            per in 10usize..18,
            k in 5usize..12,
            noise in 0usize..3,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = SubspaceModel::random(&mut rng, 24, 3, 2);
            let ds = model.sample_dataset(&mut rng, &[per, per], noise as f64 * 0.01);
            let n = 2 * per;
            let mut ssc = Ssc::default();
            // Both paths converge coordinates to `tol`; parity can only be
            // asserted above that noise floor, so tighten it well below the
            // 1e-4 comparison (same-subspace atoms are highly correlated and
            // CD stopping error is a multiple of `tol` there).
            ssc.lasso.tol = 1e-9;
            ssc.candidates = Some(crate::candidates::CandidateOptions {
                k,
                sketch_dim: 24,
                seed,
                min_points: 0,
                verify: true,
            });
            let out = ssc.candidate_codes(&ds.data).unwrap();
            proptest::prelude::prop_assert_eq!(out.certified.len(), n);
            let dense = ssc.coefficients(&ds.data).unwrap();
            let x = crate::algo::normalize_data(&ds.data);
            for (i, code) in out.codes.iter().enumerate() {
                let col = code.to_dense();
                if out.certified[i] {
                    for j in 0..n {
                        let (a, b) = (col[j], dense[(j, i)]);
                        proptest::prelude::prop_assert!(
                            (a - b).abs() < 1e-4,
                            "certified code ({}, {}): {} vs {}", j, i, a, b
                        );
                    }
                }
                // Fitted-vector parity for every point (unique even when the
                // coefficients are not).
                let fit_cand = x.matvec(&col).unwrap();
                let dense_col: Vec<f64> = (0..n).map(|j| dense[(j, i)]).collect();
                let fit_dense = x.matvec(&dense_col).unwrap();
                for (r, (a, b)) in fit_cand.iter().zip(&fit_dense).enumerate() {
                    proptest::prelude::prop_assert!(
                        (a - b).abs() < 1e-4,
                        "fitted[{}] of point {}: {} vs {} (certified: {})",
                        r, i, a, b, out.certified[i]
                    );
                }
            }
        }
    }
}
