//! Sparse Subspace Clustering (Elhamifar & Vidal, TPAMI 2013).
//!
//! Each point is sparsely self-expressed by the remaining points (paper
//! Eq. (2), the Lasso form) with the per-point `lambda` rule
//! `lambda_i = alpha / max_{j != i} |x_j^T x_i|` (the paper uses
//! `alpha = 50`); the affinity graph is `|C| + |C|^T`.

use crate::algo::{normalize_data, SubspaceClusterer};
use fedsc_graph::AffinityGraph;
use fedsc_linalg::{par, Matrix, Result};
use fedsc_sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver, LassoWorkspace};

/// SSC configuration.
///
/// ```
/// use fedsc_subspace::{Ssc, SubspaceClusterer, SubspaceModel};
/// use fedsc_clustering::clustering_accuracy;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let model = SubspaceModel::random(&mut rng, 30, 3, 2);
/// let ds = model.sample_dataset(&mut rng, &[20, 20], 0.0);
/// let labels = Ssc::default().cluster(&ds.data, 2, &mut rng).unwrap();
/// assert!(clustering_accuracy(&ds.labels, &labels) > 95.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ssc {
    /// Multiplier in the per-point lambda rule (paper: 50).
    pub alpha: f64,
    /// Lasso solver options.
    pub lasso: LassoOptions,
    /// Normalize columns to unit norm before coding (paper's convention).
    pub normalize: bool,
}

impl Default for Ssc {
    fn default() -> Self {
        Self {
            alpha: 50.0,
            lasso: LassoOptions::default(),
            normalize: true,
        }
    }
}

impl Ssc {
    /// Computes the full self-expression coefficient matrix `C`
    /// (column `i` is the sparse code of point `i`; diagonal is zero).
    ///
    /// The `N` per-point Lasso problems are independent, so they fan out
    /// over `self.lasso.threads` workers (the Phase-1 hot path of the
    /// paper's complexity analysis). Each worker carries one
    /// [`LassoWorkspace`] reused across all the points it solves (warm
    /// scratch buffers, no per-point allocation), and each solve runs the
    /// gap-safe screened path — `||x_i||^2` is just `gram[(i, i)]`. Each
    /// point's solve is untouched by the fan-out and fully re-initializes
    /// its workspace values, so the coefficients are bitwise identical for
    /// every thread count.
    pub fn coefficients(&self, data: &Matrix) -> Result<Matrix> {
        let x = if self.normalize {
            normalize_data(data)
        } else {
            data.clone()
        };
        let n = x.cols();
        let threads = self.lasso.threads.max(1);
        let gram = x.gram_threaded(threads);
        let solver = LassoSolver::new(&gram, self.lasso.clone());
        let codes = par::par_map_with(n, threads, LassoWorkspace::new, |ws, i| {
            let b = gram.col(i);
            let lambda = ssc_lambda(b, i, self.alpha);
            solver.solve_screened(b, lambda, i, gram[(i, i)], ws)
        });
        let mut c = Matrix::zeros(n, n);
        for (i, code) in codes.into_iter().enumerate() {
            for (j, v) in code?.iter() {
                c[(j, i)] = v;
            }
        }
        Ok(c)
    }
}

impl SubspaceClusterer for Ssc {
    fn name(&self) -> &'static str {
        "SSC"
    }

    fn affinity(&self, data: &Matrix) -> Result<AffinityGraph> {
        Ok(AffinityGraph::from_coefficients(&self.coefficients(data)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SubspaceModel;
    use fedsc_clustering::clustering_accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn codes_have_zero_diagonal() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SubspaceModel::random(&mut rng, 10, 2, 2);
        let ds = model.sample_dataset(&mut rng, &[8, 8], 0.0);
        let c = Ssc::default().coefficients(&ds.data).unwrap();
        for i in 0..16 {
            assert_eq!(c[(i, i)], 0.0);
        }
    }

    #[test]
    fn sep_holds_for_orthogonal_subspaces() {
        // Two orthogonal planes: SSC codes must not cross subspaces.
        let mut rng = StdRng::seed_from_u64(2);
        let model = SubspaceModel::random(&mut rng, 30, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[12, 12], 0.0);
        let g = Ssc::default().affinity(&ds.data).unwrap();
        let mut cross = 0.0f64;
        for i in 0..24 {
            for j in 0..24 {
                if ds.labels[i] != ds.labels[j] {
                    cross = cross.max(g.weight(i, j));
                }
            }
        }
        // Random 3-dim subspaces in R^30 are near-orthogonal: essentially no
        // false connections.
        assert!(cross < 1e-3, "max cross-subspace affinity {cross}");
    }

    #[test]
    fn clusters_well_separated_subspaces() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SubspaceModel::random(&mut rng, 30, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[15, 15, 15], 0.0);
        let labels = Ssc::default().cluster(&ds.data, 3, &mut rng).unwrap();
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 95.0, "accuracy {acc}");
    }

    #[test]
    fn affinity_is_bitwise_invariant_to_thread_count() {
        // The per-point Lasso fan-out must not change a single bit of the
        // coefficients — same solves, same index-ordered assembly.
        let mut rng = StdRng::seed_from_u64(7);
        let model = SubspaceModel::random(&mut rng, 25, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[18, 18], 0.01);
        let serial = Ssc::default().affinity(&ds.data).unwrap();
        for threads in [2, 4, 8] {
            let mut ssc = Ssc::default();
            ssc.lasso.threads = threads;
            let par = ssc.affinity(&ds.data).unwrap();
            assert_eq!(
                par.matrix().as_slice(),
                serial.matrix().as_slice(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn tolerates_mild_noise() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = SubspaceModel::random(&mut rng, 30, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[15, 15], 0.02);
        let labels = Ssc::default().cluster(&ds.data, 2, &mut rng).unwrap();
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 90.0, "accuracy {acc}");
    }
}
