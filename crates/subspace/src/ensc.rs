//! EnSC — Elastic-net Subspace Clustering with the ORGEN oracle active-set
//! solver (You, Li, Robinson & Vidal, CVPR 2016). Trades a little sparsity
//! for much better graph connectivity.

use crate::algo::{normalize_data, SubspaceClusterer};
use fedsc_graph::AffinityGraph;
use fedsc_linalg::{par, Matrix, Result};
use fedsc_sparse::elastic_net::{ElasticNetOptions, ElasticNetSolver};

/// EnSC configuration.
#[derive(Debug, Clone)]
pub struct Ensc {
    /// Elastic-net solver options (`lambda` mixes l1/l2, `gamma` is the
    /// data-fidelity weight).
    pub elastic: ElasticNetOptions,
    /// Normalize columns before coding.
    pub normalize: bool,
    /// Worker threads for the Gram product and the per-point elastic-net
    /// solves. The coefficients are bitwise identical for every value.
    pub threads: usize,
}

impl Default for Ensc {
    fn default() -> Self {
        Self {
            elastic: ElasticNetOptions::default(),
            normalize: true,
            threads: 1,
        }
    }
}

impl Ensc {
    /// Computes the elastic-net self-expression coefficient matrix.
    ///
    /// The per-point ORGEN solves are independent, so like SSC's they fan
    /// out over the worker pool; assembly is sequential in point order, so
    /// the matrix is bitwise identical for every thread count.
    pub fn coefficients(&self, data: &Matrix) -> Result<Matrix> {
        let x = if self.normalize {
            normalize_data(data)
        } else {
            data.clone()
        };
        let n = x.cols();
        let threads = self.threads.max(1);
        let gram = x.gram_threaded(threads);
        let solver = ElasticNetSolver::new(&gram, self.elastic.clone());
        let codes = par::par_map(n, threads, |i| solver.solve(gram.col(i), i));
        let mut c = Matrix::zeros(n, n);
        for (i, code) in codes.into_iter().enumerate() {
            for (j, v) in code?.iter() {
                c[(j, i)] = v;
            }
        }
        Ok(c)
    }
}

impl SubspaceClusterer for Ensc {
    fn name(&self) -> &'static str {
        "EnSC"
    }

    fn affinity(&self, data: &Matrix) -> Result<AffinityGraph> {
        Ok(AffinityGraph::from_coefficients(&self.coefficients(data)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SubspaceModel;
    use crate::ssc::Ssc;
    use fedsc_clustering::clustering_accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clusters_well_separated_subspaces() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SubspaceModel::random(&mut rng, 30, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[15, 15, 15], 0.0);
        let labels = Ensc::default().cluster(&ds.data, 3, &mut rng).unwrap();
        let acc = clustering_accuracy(&ds.labels, &labels);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn denser_codes_than_ssc() {
        // The ridge term spreads weight: EnSC affinities should have at
        // least as many edges as SSC's on the same data.
        let mut rng = StdRng::seed_from_u64(2);
        let model = SubspaceModel::random(&mut rng, 20, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[15, 15], 0.0);
        let count_edges = |g: &fedsc_graph::AffinityGraph| {
            let n = g.len();
            let mut e = 0usize;
            for i in 0..n {
                for j in 0..i {
                    if g.weight(i, j) > 1e-8 {
                        e += 1;
                    }
                }
            }
            e
        };
        let en = Ensc {
            elastic: ElasticNetOptions {
                lambda: 0.5,
                gamma: 50.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let e_en = count_edges(&en.affinity(&ds.data).unwrap());
        let e_ssc = count_edges(&Ssc::default().affinity(&ds.data).unwrap());
        assert!(e_en >= e_ssc, "EnSC edges {e_en} vs SSC edges {e_ssc}");
    }

    #[test]
    fn coefficients_bitwise_invariant_to_thread_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = SubspaceModel::random(&mut rng, 20, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[14, 14], 0.01);
        let serial = Ensc::default().coefficients(&ds.data).unwrap();
        for threads in [2usize, 8] {
            let en = Ensc {
                threads,
                ..Default::default()
            };
            let par = en.coefficients(&ds.data).unwrap();
            assert_eq!(par.as_slice(), serial.as_slice(), "threads = {threads}");
        }
    }

    #[test]
    fn diagonal_stays_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SubspaceModel::random(&mut rng, 15, 2, 2);
        let ds = model.sample_dataset(&mut rng, &[8, 8], 0.0);
        let c = Ensc::default().coefficients(&ds.data).unwrap();
        for i in 0..16 {
            assert_eq!(c[(i, i)], 0.0);
        }
    }
}
