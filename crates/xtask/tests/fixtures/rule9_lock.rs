fn f(s: &S) {
    let g = s.alpha.lock();
    let h = s.beta.lock();
    drop(h);
    drop(g);
}

fn g(s: &S) {
    let h = s.beta.lock();
    let g = s.alpha.lock();
    drop(g);
    drop(h);
}

fn p(s: &S, n: usize) {
    run_on_pool(n, &|| {
        let g = s.gamma.lock();
        drop(g);
    });
}
