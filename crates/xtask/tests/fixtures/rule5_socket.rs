fn f(addr: &str) -> std::io::Result<()> {
    let s = std::net::TcpStream::connect(addr)?;
    s.shutdown(std::net::Shutdown::Both)
}
