fn f(p: *const u8) -> u8 {
    unsafe { *p }
}

fn g(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
