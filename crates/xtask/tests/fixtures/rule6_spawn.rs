fn f() {
    let h = std::thread::spawn(|| {});
    let _ = h.join();
}
