fn f(s: &std::net::TcpStream, d: std::time::Duration) -> std::io::Result<()> {
    s.set_read_timeout(Some(d))?;
    Ok(())
}
