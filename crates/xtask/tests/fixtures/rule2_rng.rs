use std::collections::HashMap;

fn f() -> u64 {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let rng = thread_rng();
    rng.next_u64()
}
