fn f() -> u64 {
    let t = Instant::now();
    elapsed(t)
}

fn g() -> SystemTime {
    SystemTime::now()
}
