pub struct Svd {
    pub u: u8,
}

pub fn solve_panel(b: &[f64]) -> f64 {
    b[0]
}
