fn f(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn g(v: Option<u32>) -> u32 {
    v.expect("missing")
}

fn h() {
    panic!("boom");
}

fn justified(v: Option<u32>) -> u32 {
    // INVARIANT: caller checked `v` is Some above.
    v.unwrap()
}
