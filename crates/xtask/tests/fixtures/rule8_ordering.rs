fn publish(a: &AtomicUsize) {
    a.store(1, Ordering::Release);
}

fn probe(a: &AtomicUsize) -> usize {
    // ORDERING: probe only, no data read through the flag.
    a.load(Ordering::Relaxed)
}
