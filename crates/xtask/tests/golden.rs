//! Golden-file tests for `cargo xtask audit`.
//!
//! Each fixture under `tests/fixtures/` seeds violations of one rule
//! family; its `.expected` sibling holds the `file:line: [rule]` output the
//! engine must produce (file-level findings render without a line). The
//! fixtures are never compiled — they live outside `src/`, so the audit's
//! own workspace walk never sees them either.
//!
//! The differential property test at the bottom checks that the token-level
//! engine (`RuleSet::Core`) and the legacy line scanner agree on rules 1–6
//! over the *real* workspace: same diagnostic `(line, rule)` sites and same
//! `// INVARIANT:` site lists, file by file.

use proptest::prelude::*;
use xtask::rules::{audit_source, detect_lock_cycles, RuleSet};
use xtask::scan::{scan_source, Allowlist, Diagnostic, Profile};

/// Audits fixture `source` as `label` and renders every diagnostic —
/// including global lock-cycle findings — as `file[:line]: [rule]`.
fn run_fixture(label: &str, source: &str, allow: &Allowlist) -> Vec<String> {
    let out = audit_source(label, source, Profile::Strict, allow, RuleSet::Full);
    let mut diags = out.diagnostics;
    diags.extend(detect_lock_cycles(&out.lock_edges));
    diags.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    diags.iter().map(render).collect()
}

fn render(d: &Diagnostic) -> String {
    if d.line == 0 {
        format!("{}: [{}]", d.file, d.rule)
    } else {
        format!("{}:{}: [{}]", d.file, d.line, d.rule)
    }
}

fn check_fixture(name: &str, label: &str, source: &str, expected: &str, allow: &Allowlist) {
    let got = run_fixture(label, source, allow);
    let want: Vec<String> = expected
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    assert_eq!(got, want, "fixture `{name}` diverged from its .expected");
}

macro_rules! golden {
    ($test:ident, $name:literal, $label:literal) => {
        golden!($test, $name, $label, Allowlist::default());
    };
    ($test:ident, $name:literal, $label:literal, $allow:expr) => {
        #[test]
        fn $test() {
            check_fixture(
                $name,
                $label,
                include_str!(concat!("fixtures/", $name, ".rs")),
                include_str!(concat!("fixtures/", $name, ".expected")),
                &$allow,
            );
        }
    };
}

golden!(
    rule1_panic_fixture,
    "rule1_panic",
    "crates/linalg/src/fixture.rs",
    // One entry: the fixture's final `.unwrap()` carries an INVARIANT
    // justification and must reconcile cleanly, not fire.
    Allowlist::parse("crates/linalg/src/fixture.rs 1\n")
);
golden!(
    rule2_rng_fixture,
    "rule2_rng",
    "crates/linalg/src/fixture.rs"
);
golden!(
    rule3_timing_fixture,
    "rule3_timing",
    "crates/subspace/src/fixture.rs"
);
golden!(
    rule4_must_use_fixture,
    "rule4_must_use",
    "crates/linalg/src/fixture.rs"
);
golden!(
    rule5_socket_fixture,
    "rule5_socket",
    "crates/core/src/fixture.rs"
);
golden!(
    rule5_timeouts_fixture,
    "rule5_timeouts",
    "crates/transport/src/fixture.rs"
);
golden!(
    rule6_spawn_fixture,
    "rule6_spawn",
    "crates/federated/src/fixture.rs"
);
golden!(
    rule7_unsafe_fixture,
    "rule7_unsafe",
    "crates/linalg/src/fixture.rs"
);
golden!(
    rule8_ordering_fixture,
    "rule8_ordering",
    "crates/obs/src/fixture.rs"
);
golden!(
    rule9_lock_fixture,
    "rule9_lock",
    "crates/linalg/src/fixture.rs"
);

/// The rule-7 fixture's justified site still counts toward the registry:
/// both unsafe tokens are reported as sites, only the bare one diagnosed.
#[test]
fn rule7_fixture_counts_both_sites() {
    let out = audit_source(
        "crates/linalg/src/fixture.rs",
        include_str!("fixtures/rule7_unsafe.rs"),
        Profile::Strict,
        &Allowlist::default(),
        RuleSet::Full,
    );
    assert_eq!(out.unsafe_sites, vec![2, 7]);
}

// ---------------------------------------------------------------------------
// Differential property test: token engine vs legacy line scanner.

/// Workspace-relative `.rs` files under every scanned root, with contents.
fn workspace_files() -> Vec<(String, String, Profile)> {
    let root = {
        let mut d = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        d.pop();
        d.pop();
        d
    };
    let mut out = Vec::new();
    let roots: &[(&str, Profile)] = &[
        ("crates/linalg/src", Profile::Strict),
        ("crates/sparse/src", Profile::Strict),
        ("crates/graph/src", Profile::Strict),
        ("crates/clustering/src", Profile::Strict),
        ("crates/subspace/src", Profile::Strict),
        ("crates/federated/src", Profile::Strict),
        ("crates/data/src", Profile::Strict),
        ("crates/core/src", Profile::Strict),
        ("crates/transport/src", Profile::Strict),
        ("crates/obs/src", Profile::Strict),
        ("crates/xtask/src", Profile::Strict),
        ("src", Profile::Strict),
        ("crates/bench/src", Profile::Relaxed),
    ];
    for &(rel, profile) in roots {
        let dir = root.join(rel);
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&d) else {
                continue;
            };
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let Ok(text) = std::fs::read_to_string(&p) else {
                        continue;
                    };
                    let label = p
                        .strip_prefix(&root)
                        .map(|q| q.to_string_lossy().replace('\\', "/"))
                        .unwrap_or_default();
                    out.push((label, text, profile));
                }
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// `(line, rule)` sites of rule 1–6 diagnostics, sorted — the comparable
/// core both engines must agree on (messages differ only in phrasing).
fn sites(diags: &[Diagnostic]) -> Vec<(usize, &'static str)> {
    let mut v: Vec<(usize, &'static str)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On every real workspace file the strategy lands on, the token-level
    /// Core rules and the legacy line scanner report identical diagnostic
    /// sites and identical INVARIANT-site lists.
    #[test]
    fn token_engine_agrees_with_line_scanner(pick in 0usize..4096) {
        let files = workspace_files();
        prop_assert!(!files.is_empty());
        let (label, text, profile) = &files[pick % files.len()];
        let allow = Allowlist::default();
        let old = scan_source(label, text, *profile, &allow);
        let new = audit_source(label, text, *profile, &allow, RuleSet::Core);
        prop_assert_eq!(
            sites(&old.diagnostics),
            sites(&new.diagnostics),
            "diagnostics diverged on {}",
            label
        );
        let mut old_inv = old.invariant_sites.clone();
        old_inv.sort_unstable();
        prop_assert_eq!(
            old_inv,
            new.invariant_sites.clone(),
            "INVARIANT sites diverged on {}",
            label
        );
    }
}
