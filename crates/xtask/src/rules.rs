//! Token-level rule engine behind `cargo xtask audit` (rules 1–9).
//!
//! Rules 1–6 from the legacy line scanner ([`crate::scan`]) are re-expressed
//! here on the token stream from [`crate::lexer`], which makes them exact on
//! identifier boundaries (`MyHashMap` no longer matches `HashMap`) and
//! immune to string/comment false positives by construction. On top of that
//! foundation sit three rule families the line scanner could not express:
//!
//! 7. **unsafe-boundary** (`[unsafe]`) — every `unsafe` token in non-test
//!    code must carry a `// SAFETY:` comment on the same line or directly
//!    above (attributes and statement continuations may intervene), and
//!    each file's unsafe-site count must exactly match its entry in
//!    `crates/xtask/unsafe-registry.txt` (reconciled by the driver).
//! 8. **atomics-ordering** (`[ordering]`) — every `Ordering::Relaxed` /
//!    `Acquire` / `Release` / `AcqRel` / `SeqCst` use needs an
//!    `// ORDERING:` justification, and suspicious publish/observe pairs
//!    are flagged: a `store`-class op at `Release`/`AcqRel` on some atomic
//!    whose same-named `load` elsewhere in the file is `Relaxed` (and the
//!    mirror image) is a broken happens-before edge until justified.
//! 9. **lock-order** (`[lock-order]`) — a static lock-acquisition graph is
//!    extracted per file (receiver-name granularity, `file.rs:field`
//!    nodes): an edge `a → b` means `b` was acquired while `a` was held.
//!    The driver fails on any cycle in the global graph. Additionally,
//!    acquiring any lock inside a closure passed to `run_on_pool` (a pool
//!    job ticket) is flagged at the site: job bodies must stay lock-free
//!    or they can deadlock against the pool's own queue lock.
//!
//! The analysis is deliberately an approximation: lock identity is the
//! receiver field name qualified by file, guards bound by `let` live to the
//! end of their block (slightly longer than their true lexical lifetime),
//! and unbound guard temporaries die at the next `;`. Those choices can
//! over-report held sets (never invent a lock that was not acquired), so a
//! clean run is meaningful while a report deserves a human look.

use crate::lexer::{lex, match_delims, next_code, prev_code, Tok, TokKind};
use crate::scan::{
    Allowlist, Diagnostic, Profile, MUST_USE_STRUCTS, SANCTIONED_TIMING_FILES, SOCKET_SANCTUARY,
    SOLVER_FN_PREFIXES, SPAWN_SANCTUARY_FILES, TIMING_SANCTUARY_DIR,
};
use std::collections::{BTreeMap, BTreeSet};

/// Which rule families to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleSet {
    /// Rules 1–6 only — the `xtask check` compatibility subset.
    Core,
    /// Rules 1–9 — the full `xtask audit` set.
    Full,
}

/// One statically-extracted lock-acquisition edge: `acquired` was taken
/// while `held` was held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held (file-qualified, e.g. `par.rs:queue`).
    pub held: String,
    /// Lock being acquired under `held`.
    pub acquired: String,
    /// Workspace-relative path of the acquisition site.
    pub file: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
}

/// Result of auditing one file.
#[derive(Debug, Default)]
pub struct AuditOutcome {
    /// Rule violations.
    pub diagnostics: Vec<Diagnostic>,
    /// Lines of `// INVARIANT:`-justified panic sites (rule 1), reconciled
    /// against `panic-allowlist.txt` by the driver.
    pub invariant_sites: Vec<usize>,
    /// Lines of non-test `unsafe` tokens (rule 7), reconciled against
    /// `unsafe-registry.txt` by the driver.
    pub unsafe_sites: Vec<usize>,
    /// Lines of non-test `Ordering::*` uses (rule 8).
    pub ordering_sites: Vec<usize>,
    /// Lock-acquisition edges (rule 9), cycle-checked globally by the
    /// driver via [`detect_lock_cycles`].
    pub lock_edges: Vec<LockEdge>,
}

/// Identifiers that are nondeterministic randomness / iteration sources
/// (rule 2).
const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
    "HashMap",
    "HashSet",
];

/// Wall-clock type names (rule 3).
const TIMING_IDENTS: &[&str] = &["Instant", "SystemTime"];

/// Raw socket type names (rule 5).
const SOCKET_IDENTS: &[&str] = &["TcpStream", "TcpListener", "UdpSocket"];

/// `thread::X` members that create OS threads (rule 6).
const SPAWN_MEMBERS: &[&str] = &["spawn", "scope", "Builder"];

/// The five memory orderings rule 8 audits.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic methods that publish a value (store-class, for pair analysis).
const STORE_CLASS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// How far (in lines) a SAFETY/ORDERING justification comment may sit above
/// its site, skipping comments, attributes, blanks, and continuations.
const JUSTIFY_WALK: usize = 12;

/// One atomic operation site, for the rule-8 pair analysis.
struct AtomicOp {
    recv: String,
    method: String,
    ord: &'static str,
    line: usize,
}

/// Audits one file; `label` is its workspace-relative path.
pub fn audit_source(
    label: &str,
    text: &str,
    profile: Profile,
    allow: &Allowlist,
    rules: RuleSet,
) -> AuditOutcome {
    let mut out = AuditOutcome::default();
    let lines: Vec<&str> = text.lines().collect();
    let toks = lex(text);
    let partner = match_delims(&toks);
    let mask = test_token_mask(&toks, &partner);
    let full = rules == RuleSet::Full;

    let timing_sanctioned =
        label.starts_with(TIMING_SANCTUARY_DIR) || SANCTIONED_TIMING_FILES.contains(&label);
    let socket_sanctioned = label.starts_with(SOCKET_SANCTUARY);
    let spawn_sanctioned = SPAWN_SANCTUARY_FILES.contains(&label);

    // Deduped per line the way the line scanner counted: one hit per
    // (line, token) pair no matter how many occurrences share the line.
    let mut panic_hits: BTreeSet<(usize, &'static str, bool)> = BTreeSet::new();
    let mut simple_hits: BTreeSet<(usize, &'static str, &'static str)> = BTreeSet::new();
    let mut socket_token_seen = false;
    let mut timeouts_armed: BTreeSet<&'static str> = BTreeSet::new();
    let mut atomic_ops: Vec<AtomicOp> = Vec::new();

    for i in 0..toks.len() {
        if mask[i] || toks[i].is_comment() || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        let line = t.line;
        match t.text.as_str() {
            // Rule 1: panic freedom.
            "unwrap" if follows_dot(&toks, i) && empty_call_after(&toks, i) => {
                panic_hits.insert((line, ".unwrap()", false));
            }
            "unwrap_unchecked" if follows_dot(&toks, i) && empty_call_after(&toks, i) => {
                panic_hits.insert((line, ".unwrap_unchecked()", false));
            }
            "expect" if follows_dot(&toks, i) && open_paren_after(&toks, i).is_some() => {
                panic_hits.insert((line, ".expect(", true));
            }
            "panic" if macro_bang_call(&toks, i) => {
                panic_hits.insert((line, "panic!(", false));
            }
            "unreachable" if macro_bang_call(&toks, i) => {
                panic_hits.insert((line, "unreachable!(", false));
            }
            "todo" if macro_bang_call(&toks, i) => {
                panic_hits.insert((line, "todo!(", false));
            }
            "unimplemented" if macro_bang_call(&toks, i) => {
                panic_hits.insert((line, "unimplemented!(", false));
            }
            // Rule 6: spawn confinement (`thread::spawn` and friends).
            "thread" if !spawn_sanctioned => {
                if let Some(member) = path_member(&toks, i, SPAWN_MEMBERS) {
                    simple_hits.insert((line, "spawn", member));
                }
            }
            // Rule 5 (file level): socket-timeout arming evidence.
            "set_read_timeout" if some_call_after(&toks, i) => {
                timeouts_armed.insert("set_read_timeout(Some(");
            }
            "set_write_timeout" if some_call_after(&toks, i) => {
                timeouts_armed.insert("set_write_timeout(Some(");
            }
            // Rule 4: must-use solver results (struct decls and entry points).
            "pub" => {
                check_pub_item(&toks, &partner, i, &lines, &mut out.diagnostics, label);
            }
            // Rule 7: unsafe boundaries.
            "unsafe" if full => {
                out.unsafe_sites.push(line);
                if !comment_on_or_above(&lines, line, "// SAFETY:") {
                    out.diagnostics.push(Diagnostic {
                        file: label.to_string(),
                        line,
                        rule: "unsafe",
                        message: "`unsafe` without a `// SAFETY:` comment on or directly above \
                                  the site; state the proof obligation it discharges"
                            .to_string(),
                    });
                }
            }
            // Rule 8: atomics orderings.
            "Ordering" if full => {
                if let Some((oi, ord)) = path_member_idx(&toks, i, ORDERINGS) {
                    let ord_line = toks[oi].line;
                    out.ordering_sites.push(ord_line);
                    if !comment_on_or_above(&lines, ord_line, "// ORDERING:") {
                        out.diagnostics.push(Diagnostic {
                            file: label.to_string(),
                            line: ord_line,
                            rule: "ordering",
                            message: format!(
                                "`Ordering::{ord}` without an `// ORDERING:` justification on \
                                 or directly above the site; say what this ordering \
                                 synchronizes (or why nothing needs to be)"
                            ),
                        });
                    }
                    if let Some((recv, method)) = atomic_context(&toks, &partner, i) {
                        atomic_ops.push(AtomicOp {
                            recv,
                            method,
                            ord,
                            line: ord_line,
                        });
                    }
                }
            }
            name => {
                // Rules 2/3/5: plain forbidden identifiers.
                if let Some(&tok) = RNG_IDENTS.iter().find(|&&x| x == name) {
                    simple_hits.insert((line, "rng", tok));
                } else if let Some(&tok) = TIMING_IDENTS.iter().find(|&&x| x == name) {
                    if !timing_sanctioned {
                        simple_hits.insert((line, "timing", tok));
                    }
                } else if let Some(&tok) = SOCKET_IDENTS.iter().find(|&&x| x == name) {
                    if socket_sanctioned {
                        socket_token_seen = true;
                    } else {
                        simple_hits.insert((line, "socket", tok));
                    }
                }
            }
        }
    }

    // Emit rule 1, reconciling INVARIANT justifications.
    for &(line, token, relaxed_ok) in &panic_hits {
        if relaxed_ok && profile == Profile::Relaxed {
            continue;
        }
        let idx = line.saturating_sub(1);
        let same_line = lines.get(idx).is_some_and(|l| l.contains("// INVARIANT:"));
        if same_line || invariant_above(&lines, idx) {
            out.invariant_sites.push(line);
        } else {
            out.diagnostics.push(Diagnostic {
                file: label.to_string(),
                line,
                rule: "panic",
                message: format!(
                    "`{token}` in library code; return `Result` (or justify with an \
                     `// INVARIANT:` comment plus an allowlist entry)"
                ),
            });
        }
    }

    // Emit rules 2/3/5/6 ident hits.
    for &(line, rule, token) in &simple_hits {
        let message = match rule {
            "rng" => format!(
                "`{token}` is nondeterministic; derive randomness from a caller-provided \
                 seed (and use BTree collections for deterministic iteration)"
            ),
            "timing" => format!(
                "`{token}` outside `{TIMING_SANCTUARY_DIR}` (and `transport::timing`); route \
                 timing through `fedsc_obs::Stopwatch`/`now_ns`, `time_phase`/`par_map_timed`, \
                 or `Deadline`"
            ),
            "socket" => format!(
                "`{token}` outside `{SOCKET_SANCTUARY}`; route networking through the \
                 `fedsc_transport` traits"
            ),
            _ => format!(
                "`thread::{token}` outside the thread sanctuaries \
                 (`crates/linalg/src/par.rs`, `transport::tcp`, `core::wire`); fan work out \
                 through `fedsc_linalg::par` so the persistent pool's `pool.workers_spawned` \
                 accounting stays truthful"
            ),
        };
        out.diagnostics.push(Diagnostic {
            file: label.to_string(),
            line,
            rule,
            message,
        });
    }

    // Rule 5 (file level): raw-socket files must arm both timeouts.
    if socket_token_seen {
        for needle in ["set_read_timeout(Some(", "set_write_timeout(Some("] {
            if !timeouts_armed.contains(needle) {
                out.diagnostics.push(Diagnostic::file_level(
                    label.to_string(),
                    "socket",
                    &format!(
                        "file uses raw sockets but never calls `{needle}..))`; every blocking \
                         socket call must carry a finite timeout"
                    ),
                ));
            }
        }
    }

    // Rule 8 pair analysis: a Release-class publish whose same-named load is
    // Relaxed (or an Acquire-class load whose same-named store is Relaxed)
    // breaks the happens-before edge it implies. SeqCst publishes are
    // excluded: pairing them with Relaxed probes is an explicit idiom for
    // flags that tolerate stale reads (justified by the ORDERING comment).
    if full {
        for op in &atomic_ops {
            let suspicious = if op.ord == "Relaxed" && op.method == "load" {
                atomic_ops
                    .iter()
                    .find(|o| {
                        o.recv == op.recv
                            && STORE_CLASS.contains(&o.method.as_str())
                            && matches!(o.ord, "Release" | "AcqRel")
                    })
                    .map(|o| ("published with `Release`", o.line))
            } else if op.ord == "Relaxed" && STORE_CLASS.contains(&op.method.as_str()) {
                atomic_ops
                    .iter()
                    .find(|o| {
                        o.recv == op.recv
                            && o.method == "load"
                            && matches!(o.ord, "Acquire" | "AcqRel")
                    })
                    .map(|o| ("loaded with `Acquire`", o.line))
            } else {
                None
            };
            if let Some((what, peer_line)) = suspicious {
                out.diagnostics.push(Diagnostic {
                    file: label.to_string(),
                    line: op.line,
                    rule: "ordering",
                    message: format!(
                        "suspicious pair: `{recv}.{method}` is `Relaxed` here but `{recv}` is \
                         {what} at line {peer_line}; one side of the happens-before edge is \
                         missing",
                        recv = op.recv,
                        method = op.method,
                    ),
                });
            }
        }
    }

    // Rule 9: lock-acquisition graph + pool-ticket discipline.
    if full {
        let mut lock_scan = LockScan {
            toks: &toks,
            partner: &partner,
            mask: &mask,
            label,
            stem: file_stem(label),
            ticket_ranges: ticket_ranges(&toks, &partner),
            edges: Vec::new(),
            diags: Vec::new(),
        };
        let mut held = Vec::new();
        lock_scan.walk(0, toks.len(), &mut held);
        out.lock_edges = lock_scan.edges;
        out.diagnostics.append(&mut lock_scan.diags);
    }

    // Reconcile this file's INVARIANT sites against its allowlist budget
    // (the cross-file direction is the driver's job).
    let allowed = allow.allowed(label);
    if out.invariant_sites.len() > allowed {
        for &line in &out.invariant_sites {
            out.diagnostics.push(Diagnostic {
                file: label.to_string(),
                line,
                rule: "allowlist",
                message: format!(
                    "{} INVARIANT site(s) but the allowlist grants {allowed}; add or tighten \
                     the `crates/xtask/panic-allowlist.txt` entry",
                    out.invariant_sites.len()
                ),
            });
        }
    }

    out.invariant_sites.sort_unstable();
    out.unsafe_sites.sort_unstable();
    out.ordering_sites.sort_unstable();
    out.diagnostics
        .sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    out
}

/// Exact two-way reconciliation of a per-file count registry (the unsafe
/// registry, and the panic allowlist under `audit`): every scanned file's
/// count must equal its entry (0 if absent), and every entry must name a
/// scanned file. `seen` must contain one entry per scanned file, zeros
/// included.
pub fn reconcile_exact(
    registry: &Allowlist,
    registry_path: &str,
    rule: &'static str,
    what: &str,
    seen: &BTreeMap<String, usize>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (file, &actual) in seen {
        let allowed = registry.allowed(file);
        if actual != allowed {
            out.push(Diagnostic::file_level(
                file.clone(),
                rule,
                &format!(
                    "{actual} {what} site(s) but `{registry_path}` grants {allowed}; \
                     update the entry deliberately"
                ),
            ));
        }
    }
    for file in registry.files() {
        if !seen.contains_key(file) {
            out.push(Diagnostic::file_level(
                file.clone(),
                rule,
                &format!(
                    "`{registry_path}` entry names a file that was not scanned (moved or \
                     deleted?); remove the entry"
                ),
            ));
        }
    }
    out
}

/// Cycle detection over the global lock graph: one diagnostic per distinct
/// cycle, anchored at a representative edge.
pub fn detect_lock_cycles(edges: &[LockEdge]) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut site: BTreeMap<(&str, &str), (&str, usize)> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
        site.entry((&e.held, &e.acquired))
            .or_insert((&e.file, e.line));
    }

    // Iterative DFS with path tracking; each back edge closes a cycle.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = vec![start];
        let mut iters: Vec<Vec<&str>> = vec![adj
            .get(start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()];
        while let Some(succs) = iters.last_mut() {
            let Some(next) = succs.pop() else {
                path.pop();
                iters.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|&n| n == next) {
                // Normalize the cycle so each is reported once.
                let cyc: Vec<&str> = path[pos..].to_vec();
                let Some(min_at) = cyc
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, n)| **n)
                    .map(|(i, _)| i)
                else {
                    continue;
                };
                let mut norm: Vec<String> = cyc[min_at..]
                    .iter()
                    .chain(&cyc[..min_at])
                    .map(|s| s.to_string())
                    .collect();
                if reported.insert(norm.clone()) {
                    norm.push(norm[0].clone());
                    let (file, line) = site
                        .get(&(path[path.len() - 1], next))
                        .copied()
                        .unwrap_or(("", 0));
                    out.push(Diagnostic {
                        file: file.to_string(),
                        line,
                        rule: "lock-order",
                        message: format!(
                            "lock-order cycle: {}; two threads interleaving these \
                             acquisitions can deadlock",
                            norm.join(" -> ")
                        ),
                    });
                }
                continue;
            }
            if path.len() < 64 {
                path.push(next);
                iters.push(
                    adj.get(next)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default(),
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Token-pattern helpers.

/// Whether the nearest preceding code token is `.`.
fn follows_dot(toks: &[Tok], i: usize) -> bool {
    i > 0 && prev_code(toks, i - 1).is_some_and(|j| toks[j].is_punct('.'))
}

/// Index of a `(` immediately following token `i` (comments skipped).
fn open_paren_after(toks: &[Tok], i: usize) -> Option<usize> {
    next_code(toks, i + 1).filter(|&j| toks[j].kind == TokKind::Open && toks[j].is_punct('('))
}

/// Whether token `i` is followed by an empty call `()`.
fn empty_call_after(toks: &[Tok], i: usize) -> bool {
    open_paren_after(toks, i)
        .and_then(|j| next_code(toks, j + 1))
        .is_some_and(|k| toks[k].kind == TokKind::Close && toks[k].is_punct(')'))
}

/// Whether token `i` begins `( Some (` — timeout-arming evidence.
fn some_call_after(toks: &[Tok], i: usize) -> bool {
    open_paren_after(toks, i)
        .and_then(|j| next_code(toks, j + 1))
        .is_some_and(|k| toks[k].is_ident("Some") && open_paren_after(toks, k).is_some())
}

/// Whether token `i` is a macro invocation head (`ident ! (`).
fn macro_bang_call(toks: &[Tok], i: usize) -> bool {
    next_code(toks, i + 1)
        .filter(|&j| toks[j].is_punct('!'))
        .and_then(|j| next_code(toks, j + 1))
        .is_some_and(|k| toks[k].is_punct('('))
}

/// For `base :: member` with `member` in `set`, the member's static entry.
fn path_member(toks: &[Tok], i: usize, set: &[&'static str]) -> Option<&'static str> {
    path_member_idx(toks, i, set).map(|(_, m)| m)
}

/// Like [`path_member`], also returning the member token index.
fn path_member_idx(toks: &[Tok], i: usize, set: &[&'static str]) -> Option<(usize, &'static str)> {
    let c1 = next_code(toks, i + 1).filter(|&j| toks[j].is_punct(':'))?;
    let c2 = next_code(toks, c1 + 1).filter(|&j| toks[j].is_punct(':'))?;
    let m = next_code(toks, c2 + 1)?;
    set.iter().find(|&&x| toks[m].is_ident(x)).map(|&x| (m, x))
}

/// Rule 4 at a `pub` token: flags undeclared `#[must_use]` on solver result
/// structs and solver entry points that return an ignorable type.
fn check_pub_item(
    toks: &[Tok],
    partner: &[usize],
    i: usize,
    lines: &[&str],
    diags: &mut Vec<Diagnostic>,
    label: &str,
) {
    let Some(mut j) = next_code(toks, i + 1) else {
        return;
    };
    // pub(crate) / pub(super): jump the visibility group.
    if toks[j].kind == TokKind::Open && toks[j].is_punct('(') {
        let close = partner[j];
        if close == usize::MAX {
            return;
        }
        let Some(after) = next_code(toks, close + 1) else {
            return;
        };
        j = after;
    }
    if toks[j].is_ident("struct") {
        let Some(k) = next_code(toks, j + 1).filter(|&k| toks[k].kind == TokKind::Ident) else {
            return;
        };
        let name = toks[k].text.as_str();
        if MUST_USE_STRUCTS.contains(&name) && !attr_above(lines, toks[i].line, "#[must_use") {
            diags.push(Diagnostic {
                file: label.to_string(),
                line: toks[i].line,
                rule: "must-use",
                message: format!("solver result struct `{name}` must be declared `#[must_use]`"),
            });
        }
        return;
    }
    if !toks[j].is_ident("fn") {
        return;
    }
    let Some(k) = next_code(toks, j + 1).filter(|&k| toks[k].kind == TokKind::Ident) else {
        return;
    };
    let name = toks[k].text.as_str();
    if !SOLVER_FN_PREFIXES.iter().any(|p| name.starts_with(p)) {
        return;
    }
    // Find the parameter list, then an arrow after it.
    let Some(po) =
        (k + 1..toks.len()).find(|&x| toks[x].kind == TokKind::Open && toks[x].is_punct('('))
    else {
        return;
    };
    let pc = partner[po];
    if pc == usize::MAX {
        return;
    }
    let Some(a1) = next_code(toks, pc + 1).filter(|&x| toks[x].is_punct('-')) else {
        return; // no arrow: returns unit, nothing to ignore
    };
    let Some(a2) = next_code(toks, a1 + 1).filter(|&x| toks[x].is_punct('>')) else {
        return;
    };
    // Collect return-type identifiers up to the body/`;`/`where`.
    let mut ret = String::new();
    let mut unignorable = false;
    let mut r = a2 + 1;
    while r < toks.len() {
        let t = &toks[r];
        if t.is_comment() {
            r += 1;
            continue;
        }
        if (t.kind == TokKind::Open && t.is_punct('{')) || t.is_punct(';') || t.is_ident("where") {
            break;
        }
        if t.kind == TokKind::Ident {
            if t.text == "Result" || MUST_USE_STRUCTS.contains(&t.text.as_str()) {
                unignorable = true;
            }
            if !ret.is_empty() {
                ret.push(' ');
            }
            ret.push_str(&t.text);
        }
        r += 1;
    }
    if !unignorable && !attr_above(lines, toks[i].line, "#[must_use") {
        diags.push(Diagnostic {
            file: label.to_string(),
            line: toks[i].line,
            rule: "must-use",
            message: format!(
                "solver entry point `{name}` returns `{ret}`: return `Result` or mark it \
                 `#[must_use]`"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Justification-comment walks (line-based, over the raw source).

/// Replicates the line scanner's INVARIANT walk: upward from the site
/// through comment and statement-continuation lines, six lines at most.
fn invariant_above(lines: &[&str], idx: usize) -> bool {
    let mut back = 0usize;
    let mut i = idx;
    while i > 0 && back < 6 {
        i -= 1;
        back += 1;
        let t = lines[i].trim();
        if t.starts_with("// INVARIANT:") {
            return true;
        }
        let is_comment = t.starts_with("//");
        let continues = !t.contains(';') && !t.ends_with('{') && !t.ends_with('}');
        if !is_comment && !continues {
            break;
        }
    }
    false
}

/// Whether `marker` (e.g. `// SAFETY:`) appears on the site's own line or
/// heads a comment directly above it. The upward walk skips comment lines,
/// attributes, blanks, and statement continuations, so the justification
/// may precede `#[inline]`-style attributes or a multi-line expression.
fn comment_on_or_above(lines: &[&str], line: usize, marker: &str) -> bool {
    let idx = line.saturating_sub(1);
    if lines.get(idx).is_some_and(|l| l.contains(marker)) {
        return true;
    }
    let mut back = 0usize;
    let mut i = idx;
    while i > 0 && back < JUSTIFY_WALK {
        i -= 1;
        back += 1;
        let t = lines[i].trim();
        if t.starts_with("//") {
            if t.starts_with(marker) {
                return true;
            }
            continue;
        }
        if t.is_empty() || t.starts_with("#[") {
            continue;
        }
        let continues = !t.contains(';') && !t.ends_with('{') && !t.ends_with('}');
        if !continues {
            break;
        }
    }
    false
}

/// Whether an attribute line containing `needle` sits in the contiguous
/// attribute/comment block directly above 1-based `line`.
fn attr_above(lines: &[&str], line: usize, needle: &str) -> bool {
    let mut i = line.saturating_sub(1);
    let mut back = 0usize;
    while i > 0 && back < 8 {
        i -= 1;
        back += 1;
        let t = lines[i].trim();
        if t.starts_with("#[") || t.starts_with("//") {
            if t.contains(needle) {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

// ---------------------------------------------------------------------------
// Test-region masking.

/// Marks tokens covered by a `#[test]` or `#[cfg(test)]` attribute and the
/// item it gates (through the matching `}` or terminating `;`).
fn test_token_mask(toks: &[Tok], partner: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            if let Some(open) = next_code(toks, i + 1)
                .filter(|&j| toks[j].kind == TokKind::Open && toks[j].is_punct('['))
            {
                let close = partner[open];
                if close != usize::MAX && attr_is_test(&toks[open + 1..close]) {
                    let end = item_end(toks, partner, close + 1).min(toks.len() - 1);
                    for m in mask.iter_mut().take(end + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    mask
}

/// Whether an attribute body is `test` or `cfg(test)` (and not, say,
/// `cfg(not(test))`).
fn attr_is_test(inner: &[Tok]) -> bool {
    let idents: Vec<&str> = inner
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    idents == ["test"] || idents == ["cfg", "test"]
}

/// From the token after an attribute, the index of the token ending the
/// gated item: the `}` closing its body, or the terminating `;`.
fn item_end(toks: &[Tok], partner: &[usize], from: usize) -> usize {
    let mut j = from;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        // Skip stacked attributes between the test attr and the item.
        if t.is_punct('#') {
            if let Some(open) = next_code(toks, j + 1)
                .filter(|&x| toks[x].kind == TokKind::Open && toks[x].is_punct('['))
            {
                if partner[open] != usize::MAX {
                    j = partner[open] + 1;
                    continue;
                }
            }
        }
        match t.kind {
            TokKind::Open if t.is_punct('{') => {
                return if partner[j] != usize::MAX {
                    partner[j]
                } else {
                    j
                };
            }
            TokKind::Open => {
                if partner[j] == usize::MAX {
                    return j;
                }
                j = partner[j] + 1;
            }
            _ if t.is_punct(';') => return j,
            _ => j += 1,
        }
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------------
// Rule 8 context extraction.

/// For an `Ordering` path at token `i`, the `(receiver, method)` of the
/// atomic call it parameterizes, e.g. `idle.fetch_add(1, Ordering::Relaxed)`
/// → `("idle", "fetch_add")`. Index groups on the receiver are skipped, so
/// `slots[i].lock…` resolves to `slots`.
fn atomic_context(toks: &[Tok], partner: &[usize], i: usize) -> Option<(String, String)> {
    // Innermost enclosing `(` by backward scan.
    let mut depth = 0usize;
    let mut open = None;
    for j in (0..i).rev() {
        match toks[j].kind {
            TokKind::Close => depth += 1,
            TokKind::Open => {
                if depth == 0 {
                    if toks[j].is_punct('(') {
                        open = Some(j);
                    }
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    let open = open?;
    let mi = prev_code(toks, open.checked_sub(1)?)?;
    if toks[mi].kind != TokKind::Ident {
        return None;
    }
    let method = toks[mi].text.clone();
    let recv = receiver_before(toks, partner, mi)?;
    Some((recv, method))
}

/// The receiver identifier of a `.method` at token `mi`, skipping one
/// index group (`slots[i]` → `slots`).
fn receiver_before(toks: &[Tok], partner: &[usize], mi: usize) -> Option<String> {
    let dot = prev_code(toks, mi.checked_sub(1)?)?;
    if !toks[dot].is_punct('.') {
        return None;
    }
    let mut r = prev_code(toks, dot.checked_sub(1)?)?;
    if toks[r].kind == TokKind::Close && toks[r].is_punct(']') {
        let open = partner[r];
        if open == usize::MAX {
            return None;
        }
        r = prev_code(toks, open.checked_sub(1)?)?;
    }
    (toks[r].kind == TokKind::Ident).then(|| toks[r].text.clone())
}

// ---------------------------------------------------------------------------
// Rule 9: the lock walker.

/// The file-name stem used to qualify lock names (`crates/linalg/src/par.rs`
/// → `par.rs`).
fn file_stem(label: &str) -> String {
    label.rsplit('/').next().unwrap_or(label).to_string()
}

/// A currently-held lock during the walk.
struct Held {
    name: String,
    binding: Option<String>,
}

/// Argument ranges of `run_on_pool(…)` calls — lexically inside one means
/// the code runs (or is captured to run) under a pool job ticket.
fn ticket_ranges(toks: &[Tok], partner: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("run_on_pool") {
            if let Some(open) = open_paren_after(toks, i) {
                if partner[open] != usize::MAX {
                    out.push((open, partner[open]));
                }
            }
        }
    }
    out
}

struct LockScan<'a> {
    toks: &'a [Tok],
    partner: &'a [usize],
    mask: &'a [bool],
    label: &'a str,
    stem: String,
    ticket_ranges: Vec<(usize, usize)>,
    edges: Vec<LockEdge>,
    diags: Vec<Diagnostic>,
}

impl LockScan<'_> {
    /// Walks tokens in `[start, end)`, tracking held locks: `let`-bound
    /// guards live to the end of the enclosing block, unbound temporaries
    /// to the next `;`, and `drop(g)` releases `g` early.
    fn walk(&mut self, start: usize, end: usize, held: &mut Vec<Held>) {
        let block_mark = held.len();
        let mut i = start;
        while i < end {
            if self.mask[i] || self.toks[i].is_comment() {
                i += 1;
                continue;
            }
            let t = &self.toks[i];
            if t.kind == TokKind::Open && t.is_punct('{') {
                let j = self.partner[i];
                if j == usize::MAX || j > end {
                    i += 1;
                    continue;
                }
                let inner_mark = held.len();
                self.walk(i + 1, j, held);
                held.truncate(inner_mark);
                i = j + 1;
                continue;
            }
            if t.is_punct(';') {
                // Unbound guard temporaries die with their statement.
                let mut k = held.len();
                while k > block_mark {
                    k -= 1;
                    if held[k].binding.is_none() {
                        held.remove(k);
                    }
                }
                i += 1;
                continue;
            }
            if t.is_ident("drop") {
                if let Some((dropped, after)) = self.dropped_binding(i) {
                    if let Some(pos) = held
                        .iter()
                        .rposition(|h| h.binding.as_deref() == Some(dropped.as_str()))
                    {
                        held.remove(pos);
                    }
                    i = after;
                    continue;
                }
            }
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "lock" | "read" | "write")
                && follows_dot(self.toks, i)
                && open_paren_after(self.toks, i).is_some()
            {
                if let Some(recv) = receiver_before(self.toks, self.partner, i) {
                    let name = format!("{}:{}", self.stem, recv);
                    for h in held.iter() {
                        self.edges.push(LockEdge {
                            held: h.name.clone(),
                            acquired: name.clone(),
                            file: self.label.to_string(),
                            line: t.line,
                        });
                    }
                    if self.ticket_ranges.iter().any(|&(a, b)| a < i && i < b) {
                        self.diags.push(Diagnostic {
                            file: self.label.to_string(),
                            line: t.line,
                            rule: "lock-order",
                            message: format!(
                                "`{recv}.{}()` inside a `run_on_pool` job closure: job bodies \
                                 run under a pool ticket and must stay lock-free, or a worker \
                                 can deadlock against the pool's own queue",
                                t.text
                            ),
                        });
                    }
                    held.push(Held {
                        name,
                        binding: self.let_binding_before(i),
                    });
                }
            }
            i += 1;
        }
    }

    /// For a `drop` ident at `i`, the dropped binding name and the index
    /// after the call's `)` — `None` if this is not `drop(ident)`.
    fn dropped_binding(&self, i: usize) -> Option<(String, usize)> {
        let open = open_paren_after(self.toks, i)?;
        let arg = next_code(self.toks, open + 1)?;
        let close = next_code(self.toks, arg + 1)?;
        if self.toks[arg].kind == TokKind::Ident && self.toks[close].is_punct(')') {
            Some((self.toks[arg].text.clone(), close + 1))
        } else {
            None
        }
    }

    /// The binding a guard is assigned to, if the acquisition at token `i`
    /// sits right of an `=` in its statement: `let mut g = m.lock()` → `g`,
    /// `if let Ok(g) = m.lock()` → `g`. `None` for temporaries.
    fn let_binding_before(&self, i: usize) -> Option<String> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &self.toks[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                return None;
            }
            if t.is_punct('=') {
                // Reject compound operators (`==`, `+=`, `<=`, …).
                if j > 0 && self.toks[j - 1].kind == TokKind::Punct {
                    let c = self.toks[j - 1].text.chars().next().unwrap_or(' ');
                    if "=<>!+-*/%&|^".contains(c) {
                        continue;
                    }
                }
                if self.toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                    continue;
                }
                let b = prev_code(self.toks, j.checked_sub(1)?)?;
                if self.toks[b].kind == TokKind::Ident {
                    return Some(self.toks[b].text.clone());
                }
                if self.toks[b].kind == TokKind::Close && self.toks[b].is_punct(')') {
                    let open = self.partner[b];
                    if open != usize::MAX {
                        // Last ident inside the pattern: `Ok(mut g)` → `g`.
                        return self.toks[open..b]
                            .iter()
                            .rev()
                            .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                            .map(|t| t.text.clone());
                    }
                }
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(label: &str, text: &str) -> AuditOutcome {
        audit_source(
            label,
            text,
            Profile::Strict,
            &Allowlist::default(),
            RuleSet::Full,
        )
    }

    fn rules_of(out: &AuditOutcome) -> Vec<(&str, usize)> {
        out.diagnostics.iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn unwrap_flagged_exact_ident_boundaries() {
        let out = strict("crates/linalg/src/x.rs", "fn f() { g().unwrap(); }\n");
        assert_eq!(rules_of(&out), vec![("panic", 1)]);
        // Idents that merely contain forbidden names are clean.
        let out = strict(
            "crates/linalg/src/x.rs",
            "fn f(m: MyHashMap, i: InstantLike) { let _ = (m, i); }\n",
        );
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "/// `x.unwrap()` and panic!() in prose\nfn f() {\n    let m = \"HashMap thread_rng Instant .unwrap()\";\n    let _ = m;\n}\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn test_regions_masked_at_token_level() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x().unwrap(); let h = HashMap::new(); let _ = h; }\n}\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        // cfg(not(test)) is NOT a test region.
        let src = "#[cfg(not(test))]\nfn lib() { x().unwrap(); }\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert_eq!(rules_of(&out), vec![("panic", 2)]);
    }

    #[test]
    fn code_after_test_module_checked_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x().unwrap(); }\n}\n\nfn lib() { y().unwrap(); }\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert_eq!(rules_of(&out), vec![("panic", 6)]);
    }

    #[test]
    fn invariant_justification_matches_line_scanner() {
        let src = "fn f() {\n    // INVARIANT: columns share length\n    let x = build(a, b)\n        .expect(\"ragged input\");\n}\n";
        let allow = Allowlist::parse("crates/linalg/src/x.rs 1\n");
        let out = audit_source(
            "crates/linalg/src/x.rs",
            src,
            Profile::Strict,
            &allow,
            RuleSet::Full,
        );
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.invariant_sites, vec![4]);
    }

    #[test]
    fn relaxed_profile_tolerates_expect_only() {
        let src = "fn f() {\n    let v = g().expect(\"context\");\n    let w = h().unwrap();\n    let _ = (v, w);\n}\n";
        let out = audit_source(
            "crates/bench/src/x.rs",
            src,
            Profile::Relaxed,
            &Allowlist::default(),
            RuleSet::Full,
        );
        assert_eq!(rules_of(&out), vec![("panic", 3)]);
    }

    #[test]
    fn spawn_and_socket_and_timing_rules() {
        let src = "fn f() { let _ = thread::spawn(|| {}); }\n";
        let out = strict("crates/federated/src/x.rs", src);
        assert_eq!(rules_of(&out), vec![("spawn", 1)]);
        let out = strict("crates/linalg/src/par.rs", src);
        assert!(out.diagnostics.is_empty());

        let src = "fn f() { let _ = std::net::TcpStream::connect(a); }\n";
        let out = strict("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&out), vec![("socket", 1)]);

        let src = "fn f() { let t = Instant::now(); let _ = t; }\n";
        let out = strict("crates/subspace/src/x.rs", src);
        assert_eq!(rules_of(&out), vec![("timing", 1)]);
        assert!(strict("crates/obs/src/clock.rs", src)
            .diagnostics
            .is_empty());
    }

    #[test]
    fn transport_socket_files_must_arm_both_timeouts() {
        let armed = "fn f(s: &std::net::TcpStream) -> std::io::Result<()> {\n    s.set_read_timeout(Some(d))?;\n    s.set_write_timeout(Some(d))?;\n    Ok(())\n}\n";
        assert!(strict("crates/transport/src/tcp.rs", armed)
            .diagnostics
            .is_empty());
        let half = "fn f(s: &std::net::TcpStream) -> std::io::Result<()> {\n    s.set_read_timeout(Some(d))?;\n    Ok(())\n}\n";
        let out = strict("crates/transport/src/tcp.rs", half);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, "socket");
        assert_eq!(out.diagnostics[0].line, 0);
    }

    #[test]
    fn must_use_struct_and_solver_fn() {
        let bad = "pub struct Svd {\n    pub u: u8,\n}\n";
        let out = strict("crates/linalg/src/svd.rs", bad);
        assert_eq!(rules_of(&out), vec![("must-use", 1)]);
        let good = "#[must_use = \"dropping a factorization discards the work\"]\npub struct Svd {\n    pub u: u8,\n}\n";
        assert!(strict("crates/linalg/src/svd.rs", good)
            .diagnostics
            .is_empty());

        let bad =
            "pub fn solve_least_squares(\n    b: &[f64],\n) -> Vec<f64> {\n    Vec::new()\n}\n";
        let out = strict("crates/linalg/src/qr.rs", bad);
        assert_eq!(rules_of(&out), vec![("must-use", 1)]);
        let ok = "pub fn solve_least_squares(b: &[f64]) -> Result<Vec<f64>, Error> {\n    Ok(Vec::new())\n}\n";
        assert!(strict("crates/linalg/src/qr.rs", ok).diagnostics.is_empty());
        let ok_type = "pub fn kmeans(d: &[f64]) -> KMeansResult {\n    run(d)\n}\n";
        assert!(strict("crates/clustering/src/kmeans.rs", ok_type)
            .diagnostics
            .is_empty());
        let ok_attr = "#[must_use]\npub fn solve_norm(b: &[f64]) -> f64 {\n    0.0\n}\n";
        assert!(strict("crates/linalg/src/qr.rs", ok_attr)
            .diagnostics
            .is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let out = strict("crates/linalg/src/x.rs", bad);
        assert_eq!(rules_of(&out), vec![("unsafe", 2)]);
        assert_eq!(out.unsafe_sites, vec![2]);

        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        let out = strict("crates/linalg/src/x.rs", good);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.unsafe_sites, vec![3]);

        // Attributes may sit between the comment and an unsafe fn/impl.
        let attr = "// SAFETY: sound because the pointer is unique\n#[inline]\npub unsafe fn g(p: *mut u8) { *p = 0; }\n";
        let out = strict("crates/linalg/src/x.rs", attr);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);

        // unsafe in tests is not audited.
        let test_only = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n";
        let out = strict("crates/linalg/src/x.rs", test_only);
        assert!(out.unsafe_sites.is_empty());
    }

    #[test]
    fn ordering_requires_justification() {
        let bad = "fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Relaxed)\n}\n";
        let out = strict("crates/obs/src/x.rs", bad);
        assert_eq!(rules_of(&out), vec![("ordering", 2)]);
        assert_eq!(out.ordering_sites, vec![2]);

        let good = "fn f(a: &AtomicUsize) -> usize {\n    // ORDERING: monotonic counter, no data published\n    a.load(Ordering::Relaxed)\n}\n";
        let out = strict("crates/obs/src/x.rs", good);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn suspicious_release_relaxed_pair_flagged() {
        let src = "fn pub_side(a: &AtomicUsize) {\n    // ORDERING: publishes the buffer write\n    a.store(1, Ordering::Release);\n}\nfn sub_side(a: &AtomicUsize) -> usize {\n    // ORDERING: peek\n    a.load(Ordering::Relaxed)\n}\n";
        let out = strict("crates/obs/src/x.rs", src);
        assert_eq!(rules_of(&out), vec![("ordering", 7)]);
        assert!(out.diagnostics[0].message.contains("suspicious pair"));

        // SeqCst publish + Relaxed probe is the sanctioned flag idiom.
        let src = "fn f(a: &AtomicBool) {\n    // ORDERING: global toggle\n    a.store(true, Ordering::SeqCst);\n}\nfn g(a: &AtomicBool) -> bool {\n    // ORDERING: stale reads fine\n    a.load(Ordering::Relaxed)\n}\n";
        let out = strict("crates/obs/src/x.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn lock_edges_and_cycles() {
        let src = "fn f(s: &S) {\n    let g = s.alpha.lock();\n    let h = s.beta.lock();\n    drop(h);\n    drop(g);\n}\nfn g(s: &S) {\n    let h = s.beta.lock();\n    let g = s.alpha.lock();\n    drop(g);\n    drop(h);\n}\n";
        let out = strict("crates/linalg/src/par.rs", src);
        assert_eq!(out.lock_edges.len(), 2);
        let cycles = detect_lock_cycles(&out.lock_edges);
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(cycles[0].rule, "lock-order");
        assert!(cycles[0].message.contains("par.rs:alpha"));
    }

    #[test]
    fn drop_and_statement_scope_release_locks() {
        // After drop(g) the next acquisition carries no edge.
        let src = "fn f(s: &S) {\n    let g = s.alpha.lock();\n    drop(g);\n    let h = s.beta.lock();\n    drop(h);\n}\n";
        let out = strict("crates/linalg/src/par.rs", src);
        assert!(out.lock_edges.is_empty(), "{:?}", out.lock_edges);

        // An unbound guard dies at the `;`.
        let src = "fn f(s: &S) {\n    s.alpha.lock().push(1);\n    let h = s.beta.lock();\n    drop(h);\n}\n";
        let out = strict("crates/linalg/src/par.rs", src);
        assert!(out.lock_edges.is_empty(), "{:?}", out.lock_edges);

        // A bound guard lives to block end: nested acquisition makes an edge.
        let src = "fn f(s: &S) {\n    let g = s.alpha.lock();\n    let h = s.beta.lock();\n    let _ = (g, h);\n}\n";
        let out = strict("crates/linalg/src/par.rs", src);
        assert_eq!(out.lock_edges.len(), 1);
        assert_eq!(out.lock_edges[0].held, "par.rs:alpha");
        assert_eq!(out.lock_edges[0].acquired, "par.rs:beta");
    }

    #[test]
    fn lock_inside_pool_ticket_flagged() {
        let src = "fn f(s: &S, n: usize, t: usize) {\n    run_on_pool(n, t, |i| {\n        let g = s.state.lock();\n        drop(g);\n    });\n}\n";
        let out = strict("crates/subspace/src/x.rs", src);
        assert_eq!(rules_of(&out), vec![("lock-order", 3)]);
        assert!(out.diagnostics[0].message.contains("run_on_pool"));
    }

    #[test]
    fn core_ruleset_skips_rules_7_to_9() {
        let src = "fn f(p: *const u8, a: &AtomicUsize) -> usize {\n    unsafe { let _ = *p; }\n    a.load(Ordering::Relaxed)\n}\n";
        let out = audit_source(
            "crates/linalg/src/x.rs",
            src,
            Profile::Strict,
            &Allowlist::default(),
            RuleSet::Core,
        );
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert!(out.unsafe_sites.is_empty());
        assert!(out.ordering_sites.is_empty());
    }

    #[test]
    fn exact_registry_reconcile() {
        let reg = Allowlist::parse("crates/a/src/x.rs 2\ncrates/a/src/gone.rs 1\n");
        let mut seen = BTreeMap::new();
        seen.insert("crates/a/src/x.rs".to_string(), 1usize);
        seen.insert("crates/a/src/clean.rs".to_string(), 0usize);
        seen.insert("crates/a/src/new.rs".to_string(), 3usize);
        let diags = reconcile_exact(&reg, "unsafe-registry.txt", "unsafe", "unsafe", &seen);
        // x.rs count drifted, gone.rs is stale, new.rs is unregistered.
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "unsafe"));
    }
}
