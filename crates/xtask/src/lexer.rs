//! A small dependency-free Rust lexer for the `cargo xtask audit` rule
//! engine.
//!
//! The old `xtask check` scanner worked line-by-line on text with comments
//! and strings blanked out; that is blind to token boundaries (`MyHashMap`
//! matched `HashMap`) and cannot express structural rules like "every
//! `unsafe` block needs a registry entry" or "this lock is acquired while
//! that one is held". This module lexes source into a flat token stream
//! with line numbers, plus a delimiter-matching table, which is all the
//! structure the rules in [`crate::rules`] need:
//!
//! * Comments are **kept as tokens** (the justification-comment rules need
//!   them); string/char literal *content* is opaque (only the fact that a
//!   literal sits there is recorded), so prose can never false-positive.
//! * Raw strings (`r"…"`, `r#"…"#`), byte strings, raw identifiers
//!   (`r#type`), lifetimes vs. char literals, and nested block comments
//!   are handled correctly — the classic failure modes of regex scanners.
//! * [`match_delims`] pairs `(`/`)`, `[`/`]`, `{`/`}` so rules can jump
//!   over groups and find enclosing scopes without building a tree.
//!
//! The lexer is intentionally lossy where the rules do not care: numeric
//! literal shapes (`1e-3` splits into `1e`, `-`, `3`) and literal contents
//! are not preserved. It never fails: unbalanced delimiters and unclosed
//! literals at end-of-file degrade to unmatched/opaque tokens, and the
//! diagnostics stay best-effort rather than aborting the audit.

/// The kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type` → `type`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'claim`).
    Lifetime,
    /// Numeric literal (possibly split around exponent signs; opaque).
    Num,
    /// String literal of any flavor (content opaque).
    Str,
    /// Char or byte literal (content opaque).
    Char,
    /// `// …` comment, doc comments included; text preserved.
    LineComment,
    /// `/* … */` comment (nesting handled); text preserved.
    BlockComment,
    /// Any other single punctuation character.
    Punct,
    /// Opening delimiter: `(`, `[`, or `{`.
    Open,
    /// Closing delimiter: `)`, `]`, or `}`.
    Close,
}

/// One lexed token: kind, 1-based line, and (for idents, comments, and
/// punctuation) its text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Token text: the identifier, the full comment (markers included),
    /// or the punctuation/delimiter character. Empty for literals.
    pub text: String,
}

impl Tok {
    /// Whether this token is a (line or block) comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation/delimiter character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.kind, TokKind::Punct | TokKind::Open | TokKind::Close)
            && self.text.starts_with(c)
    }
}

/// Lexes `source` into a flat token stream. Never fails; see the module
/// docs for the degradation rules.
pub fn lex(source: &str) -> Vec<Tok> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let n = chars.len();
    let at = |j: usize| chars.get(j).copied().unwrap_or('\0');

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    line,
                    text: chars[start..i].iter().collect(),
                });
            }
            '/' if at(i + 1) == '*' => {
                let (start, start_line) = (i, line);
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && at(i + 1) == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && at(i + 1) == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    line: start_line,
                    text: chars[start..i].iter().collect(),
                });
            }
            '"' => {
                let start_line = line;
                i = skip_string(&chars, i + 1, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    line: start_line,
                    text: String::new(),
                });
            }
            '\'' => {
                // Lifetime/label vs char literal: a char literal closes with
                // a quote right after one (possibly escaped) character.
                let nxt = at(i + 1);
                if nxt == '\\' || (nxt != '\0' && at(i + 2) == '\'') {
                    let start_line = line;
                    i += 1; // past the opening quote
                    if at(i) == '\\' {
                        i += 2; // escape lead-in; '\u{…}' closes at the quote below
                        while i < n && chars[i] != '\'' {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                    i += 1; // closing quote
                    toks.push(Tok {
                        kind: TokKind::Char,
                        line: start_line,
                        text: String::new(),
                    });
                } else {
                    let start = i + 1;
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        line,
                        text: chars[start..i].iter().collect(),
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Literal prefixes and raw identifiers.
                if (word == "r" || word == "br") && (at(i) == '"' || at(i) == '#') {
                    if let Some((end, kind)) = raw_string_end(&chars, i, &mut line) {
                        i = end;
                        toks.push(Tok {
                            kind,
                            line,
                            text: String::new(),
                        });
                        continue;
                    }
                    if word == "r" && at(i) == '#' {
                        // Raw identifier r#name.
                        let id_start = i + 1;
                        i += 1;
                        while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                            i += 1;
                        }
                        toks.push(Tok {
                            kind: TokKind::Ident,
                            line,
                            text: chars[id_start..i].iter().collect(),
                        });
                        continue;
                    }
                }
                if word == "b" && at(i) == '"' {
                    let start_line = line;
                    i = skip_string(&chars, i + 1, &mut line);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        line: start_line,
                        text: String::new(),
                    });
                    continue;
                }
                if word == "b" && at(i) == '\'' {
                    i += 2; // quote + first content char (or escape lead-in)
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    toks.push(Tok {
                        kind: TokKind::Char,
                        line,
                        text: String::new(),
                    });
                    continue;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    line,
                    text: word,
                });
            }
            c if c.is_ascii_digit() => {
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // `2.5` continues the number; `0..n` does not.
                if at(i) == '.' && at(i + 1).is_ascii_digit() {
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    line,
                    text: String::new(),
                });
            }
            '(' | '[' | '{' => {
                toks.push(Tok {
                    kind: TokKind::Open,
                    line,
                    text: c.to_string(),
                });
                i += 1;
            }
            ')' | ']' | '}' => {
                toks.push(Tok {
                    kind: TokKind::Close,
                    line,
                    text: c.to_string(),
                });
                i += 1;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    line,
                    text: c.to_string(),
                });
                i += 1;
            }
        }
    }
    toks
}

/// Advances past a (non-raw) string body starting just after the opening
/// quote; returns the index after the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let n = chars.len();
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// From the position right after an `r`/`br` prefix, consumes `#…"…"#…` if
/// it really is a raw (byte) string; returns the end index and token kind.
fn raw_string_end(chars: &[char], start: usize, line: &mut usize) -> Option<(usize, TokKind)> {
    let n = chars.len();
    let mut i = start;
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || chars[i] != '"' {
        return None; // r#ident, not a raw string
    }
    i += 1;
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut h = 0usize;
            let mut j = i + 1;
            while j < n && chars[j] == '#' && h < hashes {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return Some((j, TokKind::Str));
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    Some((i, TokKind::Str))
}

/// For each `Open`/`Close` token index, the index of its partner
/// (`usize::MAX` when unmatched). Mismatched delimiter kinds still pair by
/// nesting order — good enough for scope jumps over syntactically valid
/// code, harmless on broken code.
pub fn match_delims(toks: &[Tok]) -> Vec<usize> {
    let mut partner = vec![usize::MAX; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open => stack.push(i),
            TokKind::Close => {
                if let Some(o) = stack.pop() {
                    partner[o] = i;
                    partner[i] = o;
                }
            }
            _ => {}
        }
    }
    partner
}

/// Index of the next non-comment token at or after `i`.
pub fn next_code(toks: &[Tok], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !toks[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the previous non-comment token at or before `i`.
pub fn prev_code(toks: &[Tok], i: usize) -> Option<usize> {
    let mut j = i as isize;
    while j >= 0 {
        if !toks[j as usize].is_comment() {
            return Some(j as usize);
        }
        j -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_lines() {
        let toks = lex("fn f() {\n    g()\n}\n");
        let f: Vec<(&str, usize)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(f, vec![("fn", 1), ("f", 1), ("g", 2)]);
    }

    #[test]
    fn strings_and_comments_are_opaque_but_kept() {
        let toks = lex("let s = \"panic!( .unwrap()\"; // SAFETY: prose\n");
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        let c = toks.iter().find(|t| t.kind == TokKind::LineComment);
        assert!(c.is_some_and(|t| t.text.contains("SAFETY:")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex("let s = r#\"unwrap() \" inner\"#; let t = x;");
        assert_eq!(idents("let s = r#\"unwrap()\"#;"), vec!["let", "s"]);
        assert!(toks.iter().any(|t| t.is_ident("t")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; 'lp: loop {} }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "lp"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn unicode_escape_char_literal() {
        let toks = lex("let c = '\\u{1F600}'; let after = 1;");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(toks.iter().filter(|t| t.is_comment()).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("for i in 0..count { let x = 2.5; }");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "{toks:?}");
    }

    #[test]
    fn delimiters_match() {
        let toks = lex("fn f(a: &[u8]) { g(h[0]); }");
        let partner = match_delims(&toks);
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Open {
                let j = partner[i];
                assert_ne!(j, usize::MAX);
                assert_eq!(partner[j], i);
                assert_eq!(toks[j].kind, TokKind::Close);
            }
        }
    }

    #[test]
    fn byte_literals_are_opaque() {
        let toks = lex("let b = b\"unwrap\"; let c = b'x'; let ok = 1;");
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("ok")));
    }
}
