//! SARIF-style JSON report for `cargo xtask audit --report-out`.
//!
//! Emits a minimal SARIF 2.1.0 document — one run, one result per
//! diagnostic — hand-rolled because the workspace is dependency-free. The
//! subset used here (tool.driver with rule metadata, results with ruleId /
//! level / message / one physical location) is what code-scanning UIs and
//! `sarif-tools` consume; anything fancier is omitted.

use crate::scan::Diagnostic;
use std::fmt::Write as _;

/// The rule vocabulary `audit` can emit, with one-line help text carried
/// into the report's rule metadata.
const RULE_HELP: &[(&str, &str)] = &[
    (
        "panic",
        "panic freedom: no unwrap/expect/panic! in library code",
    ),
    (
        "rng",
        "deterministic randomness: no entropy sources or hash-order iteration",
    ),
    (
        "timing",
        "sanctioned timing: wall clock confined to the obs crate",
    ),
    ("must-use", "solver results must be unignorable"),
    (
        "socket",
        "raw sockets confined to the transport crate, timeouts armed",
    ),
    (
        "spawn",
        "thread creation confined to the pool and transport sanctuaries",
    ),
    (
        "allowlist",
        "panic allowlist must match INVARIANT sites exactly",
    ),
    (
        "unsafe",
        "unsafe boundary: SAFETY comments and exact registry counts",
    ),
    (
        "ordering",
        "atomics: ORDERING justifications and happens-before pairing",
    ),
    (
        "lock-order",
        "lock acquisition graph: no cycles, no locks under a pool ticket",
    ),
    ("io", "file could not be read as UTF-8"),
];

/// Renders `diagnostics` as a SARIF 2.1.0 JSON document.
pub fn sarif(diagnostics: &[Diagnostic]) -> String {
    let mut rules = String::new();
    for (i, (id, help)) in RULE_HELP.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        let _ = write!(
            rules,
            r#"{{"id":{},"shortDescription":{{"text":{}}}}}"#,
            json_str(id),
            json_str(help)
        );
    }

    let mut results = String::new();
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        // SARIF regions are 1-based; file-level findings anchor at line 1.
        let line = d.line.max(1);
        let _ = write!(
            results,
            concat!(
                r#"{{"ruleId":{rule},"level":"error","message":{{"text":{msg}}},"#,
                r#""locations":[{{"physicalLocation":{{"artifactLocation":"#,
                r#"{{"uri":{uri}}},"region":{{"startLine":{line}}}}}}}]}}"#
            ),
            rule = json_str(d.rule),
            msg = json_str(&d.message),
            uri = json_str(&d.file),
            line = line,
        );
    }

    format!(
        concat!(
            r#"{{"version":"2.1.0","#,
            r#""$schema":"https://json.schemastore.org/sarif-2.1.0.json","#,
            r#""runs":[{{"tool":{{"driver":{{"name":"fedsc-xtask-audit","#,
            r#""informationUri":"https://example.invalid/fedsc","rules":[{rules}]}}}},"#,
            r#""results":[{results}]}}]}}"#
        ),
        rules = rules,
        results = results,
    )
}

/// JSON string literal with the escapes the diagnostics can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_valid_shape() {
        let doc = sarif(&[]);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("fedsc-xtask-audit"));
        assert!(doc.contains("\"results\":[]"));
    }

    #[test]
    fn diagnostics_round_into_results() {
        let d = Diagnostic {
            file: "crates/linalg/src/par.rs".to_string(),
            line: 42,
            rule: "unsafe",
            message: "a \"quoted\" message\nwith newline".to_string(),
        };
        let doc = sarif(&[d]);
        assert!(doc.contains(r#""ruleId":"unsafe""#));
        assert!(doc.contains(r#""startLine":42"#));
        assert!(doc.contains(r#"\"quoted\""#));
        assert!(doc.contains(r#"\n"#));
        // File-level findings clamp to line 1.
        let d0 = Diagnostic::file_level("x.rs".to_string(), "allowlist", "stale");
        assert!(sarif(&[d0]).contains(r#""startLine":1"#));
    }
}
