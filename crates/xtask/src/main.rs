//! `cargo xtask` — workspace static-analysis driver.
//!
//! `cargo xtask check` walks every `crates/*/src` tree (plus the root
//! `src/`) and enforces the domain-specific correctness rules the stock
//! toolchain cannot express (see `DESIGN.md`, "Correctness & lint
//! policy"):
//!
//! 1. **Panic freedom** — no `unwrap()` / `expect()` / `panic!` /
//!    `unreachable!` / `todo!` / `unimplemented!` in non-test library
//!    code. The few justified sites carry a `// INVARIANT:` comment and an
//!    exact-count entry in `crates/xtask/panic-allowlist.txt`.
//! 2. **Deterministic randomness** — no `thread_rng` / `from_entropy` /
//!    `OsRng` / `SystemTime`-seeded generators, and no `HashMap` /
//!    `HashSet` (nondeterministic iteration order) in the numerical
//!    crates. All randomness flows from caller-provided seeds.
//! 3. **Sanctioned timing** — `Instant` / `SystemTime` only inside
//!    `crates/obs/src` (the observability crate owns the process clock)
//!    and `transport/src/timing.rs` (socket deadlines), in **both**
//!    profiles; everything else routes timing through
//!    `fedsc_obs::Stopwatch`, `time_phase`, or `Deadline`.
//! 4. **Unignorable results** — solver/decomposition result structs are
//!    declared `#[must_use]`, and public solver entry points return
//!    `Result` or are `#[must_use]`.
//! 5. **Socket hygiene** — raw socket types (`TcpStream` / `TcpListener` /
//!    `UdpSocket`) only inside `crates/transport/src`, and any transport
//!    file that touches them must arm both `set_read_timeout(Some(..))`
//!    and `set_write_timeout(Some(..))` so no blocking socket call can
//!    hang a round forever.
//! 6. **Spawn confinement** — `thread::spawn` / `thread::scope` /
//!    `thread::Builder` only inside the persistent pool
//!    (`crates/linalg/src/par.rs`), the TCP transport's serve loops
//!    (`transport::tcp`), and the process-wire harness (`core::wire`).
//!    Everything else fans out through `fedsc_linalg::par`, which keeps
//!    the `pool.workers_spawned` accounting truthful.
//!
//! Exit status is non-zero iff any diagnostic fired; every diagnostic is a
//! `file:line: [rule] message` the terminal can jump to.
//!
//! `cargo xtask validate-trace <file.json>` checks that an exported Chrome
//! trace (`--trace-out`) is well-formed `trace_event` JSON — CI runs it
//! against the smoke-perf trace so exporter regressions fail the build.

mod scan;

use scan::{scan_source, Allowlist, Diagnostic, Profile};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates scanned with the strict profile.
const STRICT_ROOTS: &[&str] = &[
    "crates/linalg/src",
    "crates/sparse/src",
    "crates/graph/src",
    "crates/clustering/src",
    "crates/subspace/src",
    "crates/federated/src",
    "crates/data/src",
    "crates/core/src",
    "crates/transport/src",
    "crates/obs/src",
    "crates/xtask/src",
    "src",
];

/// Crates scanned with the relaxed profile (`expect` with a message
/// allowed; everything else — timing included — still enforced).
const RELAXED_ROOTS: &[&str] = &["crates/bench/src"];

const ALLOWLIST_PATH: &str = "crates/xtask/panic-allowlist.txt";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => run_check(),
        Some("validate-trace") => match args.next() {
            Some(path) => run_validate_trace(&path),
            None => {
                eprintln!("usage: cargo xtask validate-trace <trace.json>");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: check, validate-trace");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask check | cargo xtask validate-trace <trace.json>");
            ExitCode::FAILURE
        }
    }
}

/// Validates `path` as well-formed Chrome `trace_event` JSON.
fn run_validate_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask validate-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match fedsc_obs::export::validate_chrome_trace(&text) {
        Ok(n) => {
            println!("xtask validate-trace: {path}: {n} well-formed trace events");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask validate-trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Locates the workspace root: the ancestor of the current directory (or of
/// this binary's manifest) containing the top-level `Cargo.toml` with a
/// `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}

fn run_check() -> ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("xtask: could not locate the workspace root");
        return ExitCode::FAILURE;
    };
    let allowlist = match Allowlist::load(&root.join(ALLOWLIST_PATH)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask: cannot read {ALLOWLIST_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut invariant_counts = std::collections::BTreeMap::new();
    let mut files_scanned = 0usize;
    for (roots, profile) in [
        (STRICT_ROOTS, Profile::Strict),
        (RELAXED_ROOTS, Profile::Relaxed),
    ] {
        for rel in roots {
            let dir = root.join(rel);
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&dir, &mut files);
            files.sort();
            for path in files {
                let Ok(text) = std::fs::read_to_string(&path) else {
                    diagnostics.push(Diagnostic::file_level(
                        rel_label(&root, &path),
                        "io",
                        "file is not valid UTF-8 or could not be read",
                    ));
                    continue;
                };
                files_scanned += 1;
                let label = rel_label(&root, &path);
                let outcome = scan_source(&label, &text, profile, &allowlist);
                diagnostics.extend(outcome.diagnostics);
                invariant_counts.insert(label, outcome.invariant_sites.len());
            }
        }
    }
    diagnostics.extend(allowlist.reconcile(&invariant_counts));

    if diagnostics.is_empty() {
        println!("xtask check: {files_scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for d in &diagnostics {
            eprintln!("{d}");
        }
        eprintln!(
            "xtask check: {} violation(s) in {files_scanned} files",
            diagnostics.len()
        );
        ExitCode::FAILURE
    }
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
