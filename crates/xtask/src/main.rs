//! `cargo xtask` — workspace static-analysis driver.
//!
//! `cargo xtask audit` walks every `crates/*/src` tree (plus the root
//! `src/`) through the token-level rule engine (`xtask::rules`) and
//! enforces the domain-specific correctness rules the stock toolchain
//! cannot express (see `DESIGN.md`, "Correctness & lint policy"):
//!
//! 1. **Panic freedom** — no `unwrap()` / `expect()` / `panic!` /
//!    `unreachable!` / `todo!` / `unimplemented!` in non-test library
//!    code. The few justified sites carry a `// INVARIANT:` comment and an
//!    exact-count entry in `crates/xtask/panic-allowlist.txt`.
//! 2. **Deterministic randomness** — no `thread_rng` / `from_entropy` /
//!    `OsRng` / `getrandom`, and no `HashMap` / `HashSet`
//!    (nondeterministic iteration order). All randomness flows from
//!    caller-provided seeds.
//! 3. **Sanctioned timing** — `Instant` / `SystemTime` only inside
//!    `crates/obs/src` and `transport/src/timing.rs`.
//! 4. **Unignorable results** — solver/decomposition result structs are
//!    `#[must_use]`; solver entry points return `Result` or `#[must_use]`.
//! 5. **Socket hygiene** — raw socket types only inside
//!    `crates/transport/src`, with both socket timeouts armed.
//! 6. **Spawn confinement** — thread creation only in the persistent pool,
//!    the TCP serve loops, and the process-wire harness.
//! 7. **Unsafe boundaries** — every `unsafe` carries a `// SAFETY:`
//!    comment and an exact-count entry in
//!    `crates/xtask/unsafe-registry.txt`.
//! 8. **Atomics orderings** — every `Ordering::*` use carries an
//!    `// ORDERING:` justification; suspicious Release/Relaxed
//!    publish/observe pairs are flagged.
//! 9. **Lock order** — the static lock-acquisition graph is cycle-free and
//!    no lock is taken inside a `run_on_pool` job closure.
//!
//! `--report-out <file.json>` additionally writes a SARIF 2.1.0 report for
//! CI artifact upload. Exit status is non-zero iff any diagnostic fired;
//! every diagnostic is a `file:line: [rule] message` the terminal can jump
//! to.
//!
//! `cargo xtask check` is a thin alias running only rules 1–6 (the legacy
//! scanner's scope), so existing CI invocations stay meaningful.
//!
//! `cargo xtask validate-trace [--cross-process] <file.json>` checks that
//! an exported Chrome trace (`--trace-out`) is well-formed `trace_event`
//! JSON. With `--cross-process` it additionally validates a merged fleet
//! trace's causality: every span's `(parent_pid, parent_span)` must exist
//! in the trace, no child may start before its parent beyond the
//! clock-offset slack, and at least one parent edge must be present.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::rules::{audit_source, detect_lock_cycles, reconcile_exact, LockEdge, RuleSet};
use xtask::scan::{Allowlist, Diagnostic, Profile};

/// Crates scanned with the strict profile.
const STRICT_ROOTS: &[&str] = &[
    "crates/linalg/src",
    "crates/sparse/src",
    "crates/graph/src",
    "crates/clustering/src",
    "crates/subspace/src",
    "crates/federated/src",
    "crates/data/src",
    "crates/core/src",
    "crates/transport/src",
    "crates/obs/src",
    "crates/xtask/src",
    "src",
];

/// Crates scanned with the relaxed profile (`expect` with a message
/// allowed; everything else — timing included — still enforced).
const RELAXED_ROOTS: &[&str] = &["crates/bench/src"];

const ALLOWLIST_PATH: &str = "crates/xtask/panic-allowlist.txt";
const UNSAFE_REGISTRY_PATH: &str = "crates/xtask/unsafe-registry.txt";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("audit") => {
            let mut report_out = None;
            loop {
                match args.next().as_deref() {
                    Some("--report-out") => match args.next() {
                        Some(p) => report_out = Some(p),
                        None => {
                            eprintln!("usage: cargo xtask audit [--report-out <report.json>]");
                            return ExitCode::FAILURE;
                        }
                    },
                    Some(other) => {
                        eprintln!("xtask audit: unknown flag `{other}`");
                        return ExitCode::FAILURE;
                    }
                    None => break,
                }
            }
            run_rules("audit", RuleSet::Full, report_out.as_deref())
        }
        Some("check") => run_rules("check", RuleSet::Core, None),
        Some("validate-trace") => {
            let mut cross_process = false;
            let mut path = None;
            for arg in args {
                if arg == "--cross-process" {
                    cross_process = true;
                } else {
                    path = Some(arg);
                }
            }
            match path {
                Some(path) => run_validate_trace(&path, cross_process),
                None => {
                    eprintln!("usage: cargo xtask validate-trace [--cross-process] <trace.json>");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: audit, check, validate-trace");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask audit [--report-out <report.json>] | cargo xtask check | \
                 cargo xtask validate-trace [--cross-process] <trace.json>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Validates `path` as well-formed Chrome `trace_event` JSON; with
/// `cross_process`, additionally checks merged-fleet causality (every
/// parent edge resolves and respects clock-corrected ordering).
fn run_validate_trace(path: &str, cross_process: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask validate-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cross_process {
        return match fedsc_obs::export::validate_cross_process(&text) {
            Ok((n, edges)) => {
                println!(
                    "xtask validate-trace: {path}: {n} well-formed trace events, \
                     {edges} resolved parent edges"
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xtask validate-trace: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match fedsc_obs::export::validate_chrome_trace(&text) {
        Ok(n) => {
            println!("xtask validate-trace: {path}: {n} well-formed trace events");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask validate-trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Locates the workspace root: the ancestor of the current directory (or of
/// this binary's manifest) containing the top-level `Cargo.toml` with a
/// `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}

/// Shared driver for `audit` (rules 1–9) and `check` (rules 1–6).
fn run_rules(cmd: &str, rules: RuleSet, report_out: Option<&str>) -> ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("xtask: could not locate the workspace root");
        return ExitCode::FAILURE;
    };
    let allowlist = match Allowlist::load(&root.join(ALLOWLIST_PATH)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask: cannot read {ALLOWLIST_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let registry = if rules == RuleSet::Full {
        match Allowlist::load(&root.join(UNSAFE_REGISTRY_PATH)) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("xtask: cannot read {UNSAFE_REGISTRY_PATH}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut invariant_counts = BTreeMap::new();
    let mut unsafe_counts = BTreeMap::new();
    let mut lock_edges: Vec<LockEdge> = Vec::new();
    let mut files_scanned = 0usize;
    for (roots, profile) in [
        (STRICT_ROOTS, Profile::Strict),
        (RELAXED_ROOTS, Profile::Relaxed),
    ] {
        for rel in roots {
            let dir = root.join(rel);
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&dir, &mut files);
            files.sort();
            for path in files {
                let Ok(text) = std::fs::read_to_string(&path) else {
                    diagnostics.push(Diagnostic::file_level(
                        rel_label(&root, &path),
                        "io",
                        "file is not valid UTF-8 or could not be read",
                    ));
                    continue;
                };
                files_scanned += 1;
                let label = rel_label(&root, &path);
                let outcome = audit_source(&label, &text, profile, &allowlist, rules);
                diagnostics.extend(outcome.diagnostics);
                invariant_counts.insert(label.clone(), outcome.invariant_sites.len());
                unsafe_counts.insert(label, outcome.unsafe_sites.len());
                lock_edges.extend(outcome.lock_edges);
            }
        }
    }

    // Cross-file reconciliation. `check` keeps the legacy one-sided
    // allowlist check; `audit` verifies both count files exactly and
    // cycle-checks the global lock graph.
    match &registry {
        Some(reg) => {
            diagnostics.extend(reconcile_exact(
                &allowlist,
                ALLOWLIST_PATH,
                "allowlist",
                "INVARIANT",
                &invariant_counts,
            ));
            diagnostics.extend(reconcile_exact(
                reg,
                UNSAFE_REGISTRY_PATH,
                "unsafe",
                "unsafe",
                &unsafe_counts,
            ));
            diagnostics.extend(detect_lock_cycles(&lock_edges));
        }
        None => diagnostics.extend(allowlist.reconcile(&invariant_counts)),
    }

    if let Some(path) = report_out {
        let doc = xtask::report::sarif(&diagnostics);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("xtask {cmd}: cannot write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("xtask {cmd}: SARIF report written to {path}");
    }

    if diagnostics.is_empty() {
        if registry.is_some() {
            println!(
                "xtask {cmd}: {files_scanned} files clean ({} lock edge(s), acyclic)",
                lock_edges.len()
            );
        } else {
            println!("xtask {cmd}: {files_scanned} files clean");
        }
        ExitCode::SUCCESS
    } else {
        for d in &diagnostics {
            eprintln!("{d}");
        }
        eprintln!(
            "xtask {cmd}: {} violation(s) in {files_scanned} files",
            diagnostics.len()
        );
        ExitCode::FAILURE
    }
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
