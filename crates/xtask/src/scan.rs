//! The rule engine: pure functions from source text to diagnostics, so the
//! self-tests can feed in adversarial snippets without touching the
//! filesystem.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// How strictly a file is held to the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Library code: every rule applies.
    Strict,
    /// Bench/harness code: timing calls are sanctioned and `expect(...)`
    /// (a message-carrying abort) is accepted; `unwrap()` and the other
    /// messageless panics remain forbidden, as do nondeterminism rules.
    Relaxed,
}

/// One `file:line: [rule] message` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// Short rule tag (`panic`, `rng`, `timing`, `must-use`, `allowlist`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A finding that concerns the whole file (rendered without a line).
    pub fn file_level(file: String, rule: &'static str, message: &str) -> Self {
        Diagnostic {
            file,
            line: 0,
            rule,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Rule violations.
    pub diagnostics: Vec<Diagnostic>,
    /// Lines of panic sites justified by an `// INVARIANT:` comment; these
    /// must be covered by an exact-count allowlist entry.
    pub invariant_sites: Vec<usize>,
}

/// Exact-count allowlist for `// INVARIANT:`-justified panic sites.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: BTreeMap<String, usize>,
}

impl Allowlist {
    /// Parses `# comment` / `path count` lines.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::parse(&text))
    }

    /// Parses the allowlist format (used directly by the self-tests).
    pub fn parse(text: &str) -> Self {
        let mut entries = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(path), Some(count)) = (parts.next(), parts.next()) {
                if let Ok(count) = count.parse::<usize>() {
                    entries.insert(path.to_string(), count);
                }
            }
        }
        Allowlist { entries }
    }

    /// Allowed invariant-site count for `file` (0 if unlisted).
    pub fn allowed(&self, file: &str) -> usize {
        self.entries.get(file).copied().unwrap_or(0)
    }

    /// The files named by entries, in sorted order.
    pub fn files(&self) -> impl Iterator<Item = &String> {
        self.entries.keys()
    }

    /// Diagnostics for entries whose file was never visited or whose count
    /// no longer matches; call after every file has been checked in.
    pub fn reconcile(&self, seen: &BTreeMap<String, usize>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (file, &allowed) in &self.entries {
            match seen.get(file) {
                None => out.push(Diagnostic::file_level(
                    file.clone(),
                    "allowlist",
                    "allowlisted file was not scanned (moved or deleted?); remove the entry",
                )),
                Some(&actual) if actual < allowed => out.push(Diagnostic::file_level(
                    file.clone(),
                    "allowlist",
                    &format!(
                        "allowlist grants {allowed} INVARIANT site(s) but only {actual} exist; \
                         tighten the entry"
                    ),
                )),
                Some(_) => {}
            }
        }
        out
    }
}

/// Forbidden panic constructs: token, plus whether the relaxed profile
/// tolerates it.
const PANIC_TOKENS: &[(&str, bool)] = &[
    (".unwrap()", false),
    (".unwrap_unchecked()", false),
    (".expect(", true),
    ("panic!(", false),
    ("unreachable!(", false),
    ("todo!(", false),
    ("unimplemented!(", false),
];

/// Nondeterministic randomness / ordering sources (rule 2). All profiles.
const RNG_TOKENS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
    "HashMap",
    "HashSet",
];

/// Wall-clock constructs (rule 3): naming the clock types at all is
/// confined to the timing sanctuary, in **both** profiles —
/// `SystemTime::now` included (it used to ride along in the RNG rule).
const TIMING_TOKENS: &[&str] = &["Instant", "SystemTime"];

/// The observability crate owns the process clock (`fedsc_obs::clock`);
/// every file in it may observe time.
pub const TIMING_SANCTUARY_DIR: &str = "crates/obs/src";

/// Extra files allowed to observe the wall clock: the transport crate's
/// deadline/retry module (socket budgets are inherently wall-clock).
pub const SANCTIONED_TIMING_FILES: &[&str] = &["crates/transport/src/timing.rs"];

/// Raw socket types (rule 5): only the transport crate may touch them, and
/// any transport file that does must arm both socket timeouts.
const SOCKET_TOKENS: &[&str] = &["TcpStream", "TcpListener", "UdpSocket"];

/// The one directory where raw sockets are legal.
pub const SOCKET_SANCTUARY: &str = "crates/transport/src";

/// Thread-creation constructs (rule 6), both profiles. Worker threads are
/// confined to the persistent pool and the transport/server accept loops;
/// everything else fans out through `fedsc_linalg::par`, which keeps the
/// `pool.workers_spawned` accounting truthful and the thread-invariance
/// guarantees centralized.
const SPAWN_TOKENS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];

/// Files allowed to create OS threads directly: the pool itself, the TCP
/// transport's accept/serve loops, and the process-spawning wire harness.
/// `crates/hier` is deliberately absent: the aggregation-tree driver is
/// single-threaded by design (staged tier sweeps on the caller's thread).
pub const SPAWN_SANCTUARY_FILES: &[&str] = &[
    "crates/linalg/src/par.rs",
    "crates/transport/src/tcp.rs",
    "crates/core/src/wire.rs",
];

/// Solver/decomposition result structs that must be declared `#[must_use]`
/// (rule 4a): ignoring one silently drops a factorization.
pub const MUST_USE_STRUCTS: &[&str] = &[
    "Svd",
    "SymmetricEig",
    "Qr",
    "Lu",
    "Cholesky",
    "SparseVec",
    "KMeansResult",
];

/// `pub fn` name prefixes that are solver entry points (rule 4b): they must
/// return `Result` or carry `#[must_use]`.
pub const SOLVER_FN_PREFIXES: &[&str] = &[
    "solve",
    "svd",
    "eigh",
    "lanczos",
    "omp",
    "kmeans",
    "spectral_clustering",
    "cluster",
];

/// Scans one file; `label` is its workspace-relative path.
pub fn scan_source(label: &str, text: &str, profile: Profile, allow: &Allowlist) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    let lines: Vec<&str> = text.lines().collect();
    let stripped = strip_comments_and_strings(text);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let test_mask = test_region_mask(&stripped_lines);
    let timing_sanctioned =
        label.starts_with(TIMING_SANCTUARY_DIR) || SANCTIONED_TIMING_FILES.contains(&label);
    let socket_sanctioned = label.starts_with(SOCKET_SANCTUARY);
    let spawn_sanctioned = SPAWN_SANCTUARY_FILES.contains(&label);
    let mut socket_token_seen = false;

    /// A panic token is justified when an `// INVARIANT:` comment sits on the
    /// same statement: walk upward through comment lines and
    /// statement-continuation lines (no `;`, not a block boundary) for a few
    /// lines at most, so the comment may precede a multi-line expression.
    fn invariant_above(lines: &[&str], idx: usize) -> bool {
        let mut back = 0usize;
        let mut i = idx;
        while i > 0 && back < 6 {
            i -= 1;
            back += 1;
            let t = lines[i].trim();
            if t.starts_with("// INVARIANT:") {
                return true;
            }
            let is_comment = t.starts_with("//");
            let continues = !t.contains(';') && !t.ends_with('{') && !t.ends_with('}');
            if !is_comment && !continues {
                break;
            }
        }
        false
    }

    let mut pending_must_use = false;
    for (idx, &code) in stripped_lines.iter().enumerate() {
        let line_no = idx + 1;
        let raw = lines.get(idx).copied().unwrap_or("");
        if test_mask[idx] {
            continue;
        }

        // Rule 1: panic freedom.
        for &(token, relaxed_ok) in PANIC_TOKENS {
            if !code.contains(token) {
                continue;
            }
            if relaxed_ok && profile == Profile::Relaxed {
                continue;
            }
            let justified = raw.contains("// INVARIANT:") || invariant_above(&lines, idx);
            if justified {
                out.invariant_sites.push(line_no);
            } else {
                out.diagnostics.push(Diagnostic {
                    file: label.to_string(),
                    line: line_no,
                    rule: "panic",
                    message: format!(
                        "`{token}` in library code; return `Result` (or justify with an \
                         `// INVARIANT:` comment plus an allowlist entry)"
                    ),
                });
            }
        }

        // Rule 2: deterministic randomness and iteration order.
        for &token in RNG_TOKENS {
            if code.contains(token) {
                out.diagnostics.push(Diagnostic {
                    file: label.to_string(),
                    line: line_no,
                    rule: "rng",
                    message: format!(
                        "`{token}` is nondeterministic; derive randomness from a caller-provided \
                         seed (and use BTree collections for deterministic iteration)"
                    ),
                });
            }
        }

        // Rule 3: sanctioned timing only (both profiles — the wall clock
        // lives in `fedsc_obs`, full stop).
        if !timing_sanctioned {
            for &token in TIMING_TOKENS {
                if code.contains(token) {
                    out.diagnostics.push(Diagnostic {
                        file: label.to_string(),
                        line: line_no,
                        rule: "timing",
                        message: format!(
                            "`{token}` outside `{TIMING_SANCTUARY_DIR}` (and \
                             `transport::timing`); route timing through \
                             `fedsc_obs::Stopwatch`/`now_ns`, \
                             `time_phase`/`par_map_timed`, or `Deadline`"
                        ),
                    });
                }
            }
        }

        // Rule 5: raw sockets only inside the transport crate.
        for &token in SOCKET_TOKENS {
            if !code.contains(token) {
                continue;
            }
            if socket_sanctioned {
                socket_token_seen = true;
            } else {
                out.diagnostics.push(Diagnostic {
                    file: label.to_string(),
                    line: line_no,
                    rule: "socket",
                    message: format!(
                        "`{token}` outside `{SOCKET_SANCTUARY}`; route networking through the \
                         `fedsc_transport` traits"
                    ),
                });
            }
        }

        // Rule 6: thread creation confined to the pool and the transport
        // serve loops (both profiles).
        if !spawn_sanctioned {
            for &token in SPAWN_TOKENS {
                if code.contains(token) {
                    out.diagnostics.push(Diagnostic {
                        file: label.to_string(),
                        line: line_no,
                        rule: "spawn",
                        message: format!(
                            "`{token}` outside the thread sanctuaries \
                             (`crates/linalg/src/par.rs`, `transport::tcp`, `core::wire`); \
                             fan work out through `fedsc_linalg::par` so the persistent \
                             pool's `pool.workers_spawned` accounting stays truthful"
                        ),
                    });
                }
            }
        }

        // Rule 4a: solver result structs must be #[must_use].
        if let Some(name) = declared_struct_name(code) {
            if MUST_USE_STRUCTS.contains(&name) && !pending_must_use {
                out.diagnostics.push(Diagnostic {
                    file: label.to_string(),
                    line: line_no,
                    rule: "must-use",
                    message: format!(
                        "solver result struct `{name}` must be declared `#[must_use]`"
                    ),
                });
            }
        }

        // Rule 4b: public solver entry points return Result or #[must_use].
        if let Some((name, ret)) = pub_fn_signature(code, stripped_lines.get(idx + 1).copied()) {
            let is_solver = SOLVER_FN_PREFIXES.iter().any(|p| name.starts_with(p));
            // A `Result` return, a `#[must_use]` attribute, or returning a
            // type that is itself `#[must_use]` all make the result
            // unignorable.
            let ret_is_must_use_type = MUST_USE_STRUCTS.iter().any(|s| ret.contains(s));
            if is_solver
                && !ret.contains("Result<")
                && !ret.is_empty()
                && !ret_is_must_use_type
                && !pending_must_use
            {
                out.diagnostics.push(Diagnostic {
                    file: label.to_string(),
                    line: line_no,
                    rule: "must-use",
                    message: format!(
                        "solver entry point `{name}` returns `{ret}`: return `Result` or mark \
                         it `#[must_use]`"
                    ),
                });
            }
        }

        pending_must_use = code.contains("#[must_use");
    }

    // Rule 5 (file level): a transport file that owns raw sockets must arm
    // finite read and write timeouts, or a dead peer hangs the round.
    if socket_token_seen {
        let non_test_code = || {
            stripped_lines
                .iter()
                .zip(&test_mask)
                .filter(|&(_, &in_test)| !in_test)
                .map(|(&l, _)| l)
        };
        for needle in ["set_read_timeout(Some(", "set_write_timeout(Some("] {
            if !non_test_code().any(|l| l.contains(needle)) {
                out.diagnostics.push(Diagnostic::file_level(
                    label.to_string(),
                    "socket",
                    &format!(
                        "file uses raw sockets but never calls `{needle}..))`; every blocking \
                         socket call must carry a finite timeout"
                    ),
                ));
            }
        }
    }

    // Reconcile this file's INVARIANT sites with its allowlist budget.
    let allowed = allow.allowed(label);
    if out.invariant_sites.len() > allowed {
        for &line in &out.invariant_sites {
            out.diagnostics.push(Diagnostic {
                file: label.to_string(),
                line,
                rule: "allowlist",
                message: format!(
                    "{} INVARIANT site(s) but the allowlist grants {allowed}; add or tighten \
                     the `crates/xtask/panic-allowlist.txt` entry",
                    out.invariant_sites.len()
                ),
            });
        }
    }
    out
}

/// `pub struct Name` (after attributes) -> `Name`.
fn declared_struct_name(code: &str) -> Option<&str> {
    let rest = code.trim_start().strip_prefix("pub struct ")?;
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

/// `pub fn name(...) -> Ret {` -> `(name, Ret)`. The return type may sit on
/// the following line; shape-only parsing, good enough for rustfmt'd code.
fn pub_fn_signature<'a>(code: &'a str, next: Option<&'a str>) -> Option<(&'a str, String)> {
    let t = code.trim_start();
    let rest = t
        .strip_prefix("pub fn ")
        .or_else(|| t.strip_prefix("pub(crate) fn "))?;
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    let name = &rest[..end];
    let ret = match code.split_once("->") {
        Some((_, r)) => r.trim().trim_end_matches('{').trim().to_string(),
        None => {
            if code.trim_end().ends_with(')') {
                // Signature closed without an arrow: returns unit.
                String::new()
            } else {
                // Multi-line signature: peek one line for the arrow.
                match next.and_then(|n| n.split_once("->")) {
                    Some((_, r)) => r.trim().trim_end_matches('{').trim().to_string(),
                    None => String::new(),
                }
            }
        }
    };
    Some((name, ret))
}

/// Marks lines inside `#[cfg(test)]`-gated items by brace tracking.
fn test_region_mask(stripped_lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; stripped_lines.len()];
    let mut depth: i64 = 0;
    let mut region_end_depth: Option<i64> = None;
    let mut pending_cfg_test = false;
    for (idx, &line) in stripped_lines.iter().enumerate() {
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if region_end_depth.is_none() && line.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if let Some(end_depth) = region_end_depth {
            mask[idx] = true;
            depth += opens - closes;
            if depth <= end_depth {
                region_end_depth = None;
            }
            continue;
        }
        if pending_cfg_test {
            mask[idx] = true;
            if opens > 0 {
                // The gated item's body starts here.
                pending_cfg_test = false;
                depth += opens - closes;
                if opens - closes > 0 {
                    region_end_depth = Some(depth - (opens - closes));
                }
                continue;
            }
        }
        depth += opens - closes;
    }
    mask
}

/// Blanks out comments and string/char literals so token search cannot
/// false-positive on documentation or message text. Line structure is
/// preserved.
fn strip_comments_and_strings(text: &str) -> String {
    #[derive(PartialEq)]
    enum S {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut state = S::Code;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let next = if i + 1 < bytes.len() {
            bytes[i + 1] as char
        } else {
            '\0'
        };
        match state {
            S::Code => match (c, next) {
                ('/', '/') => {
                    state = S::LineComment;
                    out.push(' ');
                    i += 1;
                }
                ('/', '*') => {
                    state = S::BlockComment(1);
                    out.push(' ');
                    i += 1;
                }
                ('"', _) => {
                    state = S::Str;
                    out.push('"');
                }
                ('r', '"') | ('r', '#') if !prev_ident(&out) => {
                    // Raw string: count the hashes.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'"' {
                        state = S::RawStr(hashes);
                        out.push(' ');
                        i = j;
                    } else {
                        out.push(c);
                    }
                }
                ('\'', _) => {
                    // Lifetime or char literal: a char literal closes with
                    // a quote within a few chars.
                    if next == '\\' || (i + 2 < bytes.len() && bytes[i + 2] == b'\'') {
                        state = S::Char;
                    }
                    out.push('\'');
                }
                _ => out.push(c),
            },
            S::LineComment => {
                if c == '\n' {
                    state = S::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            S::BlockComment(d) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '/' && next == '*' {
                    state = S::BlockComment(d + 1);
                    i += 1;
                } else if c == '*' && next == '/' {
                    state = if d == 1 {
                        S::Code
                    } else {
                        S::BlockComment(d - 1)
                    };
                    i += 1;
                }
            }
            S::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next != '\0' {
                        out.push(if next == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
                '"' => {
                    state = S::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            S::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut h = 0;
                    while j < bytes.len() && bytes[j] == b'#' && h < hashes {
                        h += 1;
                        j += 1;
                    }
                    if h == hashes {
                        state = S::Code;
                        out.push(' ');
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i = j - 1;
                    } else {
                        out.push(' ');
                    }
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            S::Char => {
                if c == '\\' && next != '\0' {
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                } else if c == '\'' {
                    state = S::Code;
                    out.push('\'');
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
        }
        i += 1;
    }
    out
}

/// Whether the last pushed char continues an identifier (so `r` in `var` is
/// not misread as a raw-string prefix).
fn prev_ident(out: &str) -> bool {
    out.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(label: &str, text: &str) -> ScanOutcome {
        scan_source(label, text, Profile::Strict, &Allowlist::default())
    }

    #[test]
    fn flags_unwrap_with_file_and_line() {
        let src = "fn f() {\n    let x = g().unwrap();\n}\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert_eq!(out.diagnostics.len(), 1);
        let d = &out.diagnostics[0];
        assert_eq!(
            (d.file.as_str(), d.line, d.rule),
            ("crates/linalg/src/x.rs", 2, "panic")
        );
        assert!(format!("{d}").starts_with("crates/linalg/src/x.rs:2: [panic]"));
    }

    #[test]
    fn flags_every_panic_macro() {
        for token in [
            "panic!(\"x\")",
            "unreachable!()",
            "todo!()",
            "unimplemented!()",
        ] {
            let src = format!("fn f() {{ {token} }}\n");
            let out = strict("crates/core/src/x.rs", &src);
            assert_eq!(out.diagnostics.len(), 1, "{token} not flagged");
        }
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x().unwrap(); panic!(); }\n}\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn code_after_test_module_is_checked_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x().unwrap(); }\n}\n\nfn lib() { y().unwrap(); }\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].line, 6);
    }

    #[test]
    fn doc_comments_and_strings_do_not_false_positive() {
        let src = "/// Call `x.unwrap()` and panic!(…).\n//! thread_rng in prose\nfn f() {\n    let msg = \"Instant::now inside a string: .unwrap()\";\n    let _ = msg;\n}\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn invariant_comment_without_allowlist_entry_fails() {
        let src = "fn f() {\n    // INVARIANT: shapes agree by construction\n    let x = g().expect(\"shapes\");\n}\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert_eq!(out.invariant_sites, vec![3]);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, "allowlist");
    }

    #[test]
    fn invariant_comment_covers_multiline_statement() {
        // The comment precedes a statement whose `.expect` lands on a
        // continuation line two rows down.
        let src = "fn f() {\n    // INVARIANT: columns share length\n    let x = build(a, b)\n        .expect(\"ragged input\");\n}\n";
        let allow = Allowlist::parse("crates/linalg/src/x.rs 1\n");
        let out = scan_source("crates/linalg/src/x.rs", src, Profile::Strict, &allow);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.invariant_sites, vec![4]);
    }

    #[test]
    fn invariant_comment_on_earlier_statement_does_not_leak() {
        // A completed statement sits between the comment and the panic site,
        // so the justification must not carry over.
        let src = "fn f() {\n    // INVARIANT: for the first call only\n    let a = g().expect(\"first\");\n    let b = h().unwrap();\n}\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert_eq!(out.invariant_sites, vec![3]);
        assert_eq!(
            out.diagnostics.iter().filter(|d| d.rule == "panic").count(),
            1
        );
    }

    #[test]
    fn invariant_comment_with_allowlist_entry_passes() {
        let src = "fn f() {\n    // INVARIANT: shapes agree by construction\n    let x = g().expect(\"shapes\");\n}\n";
        let allow = Allowlist::parse("crates/linalg/src/x.rs 1\n");
        let out = scan_source("crates/linalg/src/x.rs", src, Profile::Strict, &allow);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn overdrawn_allowlist_budget_fails() {
        let src = "fn f() {\n    // INVARIANT: a\n    a().expect(\"a\");\n    // INVARIANT: b\n    b().expect(\"b\");\n}\n";
        let allow = Allowlist::parse("crates/linalg/src/x.rs 1\n");
        let out = scan_source("crates/linalg/src/x.rs", src, Profile::Strict, &allow);
        assert!(!out.diagnostics.is_empty());
    }

    #[test]
    fn stale_allowlist_entries_are_reported() {
        let allow = Allowlist::parse("crates/linalg/src/gone.rs 2\ncrates/linalg/src/over.rs 3\n");
        let mut seen = std::collections::BTreeMap::new();
        seen.insert("crates/linalg/src/over.rs".to_string(), 1usize);
        let diags = allow.reconcile(&seen);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "allowlist"));
    }

    #[test]
    fn nondeterministic_rng_and_collections_flagged() {
        for token in [
            "rand::thread_rng()",
            "StdRng::from_entropy()",
            "OsRng.next()",
            "HashMap::new()",
            "HashSet::new()",
        ] {
            let src = format!("fn f() {{ let _ = {token}; }}\n");
            let out = strict("crates/clustering/src/x.rs", &src);
            assert!(
                out.diagnostics.iter().any(|d| d.rule == "rng"),
                "{token} not flagged: {:?}",
                out.diagnostics
            );
        }
    }

    #[test]
    fn timing_forbidden_except_sanctioned_files() {
        for src in [
            "fn f() { let t = Instant::now(); let _ = t; }\n",
            "fn f() { let t = std::time::SystemTime::now(); let _ = t; }\n",
        ] {
            let out = strict("crates/subspace/src/x.rs", src);
            assert_eq!(out.diagnostics.len(), 1, "{src}");
            assert_eq!(out.diagnostics[0].rule, "timing");
            for sanctioned in super::SANCTIONED_TIMING_FILES {
                let out = strict(sanctioned, src);
                assert!(
                    out.diagnostics.is_empty(),
                    "{sanctioned}: {:?}",
                    out.diagnostics
                );
            }
        }
    }

    #[test]
    fn obs_crate_is_a_timing_sanctuary() {
        let src = "fn f() { let t = Instant::now(); let _ = t; }\n";
        for file in ["crates/obs/src/clock.rs", "crates/obs/src/deep/nested.rs"] {
            let out = strict(file, src);
            assert!(out.diagnostics.is_empty(), "{file}: {:?}", out.diagnostics);
        }
        // Files that were sanctioned before the obs crate took over the
        // clock are no longer exempt.
        for file in [
            "crates/linalg/src/par.rs",
            "crates/federated/src/parallel.rs",
            "crates/core/src/scheme.rs",
        ] {
            let out = strict(file, src);
            assert_eq!(out.diagnostics.len(), 1, "{file}");
            assert_eq!(out.diagnostics[0].rule, "timing");
        }
    }

    #[test]
    fn relaxed_profile_allows_expect_but_not_timing() {
        let src = "fn f() {\n    let t = Instant::now();\n    let v = g().expect(\"context\");\n    let w = h().unwrap();\n    let _ = (t, v, w);\n}\n";
        let out = scan_source(
            "crates/bench/src/x.rs",
            src,
            Profile::Relaxed,
            &Allowlist::default(),
        );
        assert_eq!(out.diagnostics.len(), 2, "{:?}", out.diagnostics);
        assert_eq!(out.diagnostics[0].rule, "timing");
        assert_eq!(out.diagnostics[0].line, 2);
        assert_eq!(out.diagnostics[1].rule, "panic");
        assert_eq!(out.diagnostics[1].line, 4);
    }

    #[test]
    fn must_use_struct_rule() {
        let bad = "pub struct Svd {\n    pub u: Matrix,\n}\n";
        let out = strict("crates/linalg/src/svd.rs", bad);
        assert!(out.diagnostics.iter().any(|d| d.rule == "must-use"));
        let good = "#[must_use = \"dropping a factorization discards the work\"]\npub struct Svd {\n    pub u: Matrix,\n}\n";
        let out = strict("crates/linalg/src/svd.rs", good);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn solver_entry_points_must_return_result_or_must_use() {
        let bad = "pub fn solve_least_squares(b: &[f64]) -> Vec<f64> {\n    Vec::new()\n}\n";
        let out = strict("crates/linalg/src/qr.rs", bad);
        assert!(
            out.diagnostics.iter().any(|d| d.rule == "must-use"),
            "{:?}",
            out.diagnostics
        );
        let ok_result =
            "pub fn solve_least_squares(b: &[f64]) -> Result<Vec<f64>> {\n    Ok(Vec::new())\n}\n";
        assert!(strict("crates/linalg/src/qr.rs", ok_result)
            .diagnostics
            .is_empty());
        let ok_attr = "#[must_use]\npub fn solve_norm(b: &[f64]) -> f64 {\n    0.0\n}\n";
        assert!(strict("crates/linalg/src/qr.rs", ok_attr)
            .diagnostics
            .is_empty());
        // Returning a type that is itself #[must_use] also satisfies the rule.
        let ok_type = "pub fn kmeans(d: &[f64]) -> KMeansResult {\n    run(d)\n}\n";
        assert!(strict("crates/clustering/src/kmeans.rs", ok_type)
            .diagnostics
            .is_empty());
    }

    #[test]
    fn raw_sockets_outside_transport_are_flagged() {
        for token in ["TcpStream", "TcpListener", "UdpSocket"] {
            let src = format!("fn f() {{ let _ = std::net::{token}; }}\n");
            let out = strict("crates/core/src/x.rs", &src);
            assert!(
                out.diagnostics.iter().any(|d| d.rule == "socket"),
                "{token} not flagged: {:?}",
                out.diagnostics
            );
        }
        // The relaxed (bench) profile gets no socket exemption either.
        let src = "fn f() { let _ = std::net::TcpStream; }\n";
        let out = scan_source(
            "crates/bench/src/x.rs",
            src,
            Profile::Relaxed,
            &Allowlist::default(),
        );
        assert!(out.diagnostics.iter().any(|d| d.rule == "socket"));
    }

    #[test]
    fn transport_sockets_require_both_timeouts() {
        let armed = "fn f(s: &std::net::TcpStream) -> std::io::Result<()> {\n    s.set_read_timeout(Some(d))?;\n    s.set_write_timeout(Some(d))?;\n    Ok(())\n}\n";
        let out = strict("crates/transport/src/tcp.rs", armed);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);

        let half_armed = "fn f(s: &std::net::TcpStream) -> std::io::Result<()> {\n    s.set_read_timeout(Some(d))?;\n    Ok(())\n}\n";
        let out = strict("crates/transport/src/tcp.rs", half_armed);
        assert_eq!(out.diagnostics.len(), 1, "{:?}", out.diagnostics);
        assert_eq!(out.diagnostics[0].rule, "socket");
        assert_eq!(out.diagnostics[0].line, 0);
        assert!(out.diagnostics[0].message.contains("set_write_timeout"));

        // Arming the timeouts only inside #[cfg(test)] does not count.
        let test_armed = "fn f(s: &std::net::TcpStream) {}\n\n#[cfg(test)]\nmod tests {\n    fn t(s: &std::net::TcpStream) {\n        s.set_read_timeout(Some(d)).ok();\n        s.set_write_timeout(Some(d)).ok();\n    }\n}\n";
        let out = strict("crates/transport/src/tcp.rs", test_armed);
        assert_eq!(
            out.diagnostics
                .iter()
                .filter(|d| d.rule == "socket")
                .count(),
            2,
            "{:?}",
            out.diagnostics
        );
    }

    #[test]
    fn thread_spawn_confined_to_sanctuaries() {
        for token in [
            "std::thread::spawn(|| {})",
            "thread::scope(|s| {})",
            "thread::Builder::new()",
        ] {
            let src = format!("fn f() {{ let _ = {token}; }}\n");
            let out = strict("crates/federated/src/x.rs", &src);
            assert!(
                out.diagnostics.iter().any(|d| d.rule == "spawn"),
                "{token} not flagged: {:?}",
                out.diagnostics
            );
            // The relaxed (bench) profile gets no spawn exemption either.
            let out = scan_source(
                "crates/bench/src/x.rs",
                &src,
                Profile::Relaxed,
                &Allowlist::default(),
            );
            assert!(out.diagnostics.iter().any(|d| d.rule == "spawn"));
            for sanctioned in super::SPAWN_SANCTUARY_FILES {
                let out = strict(sanctioned, &src);
                assert!(
                    !out.diagnostics.iter().any(|d| d.rule == "spawn"),
                    "{sanctioned}: {:?}",
                    out.diagnostics
                );
            }
        }
        // Test modules may spawn helper threads freely.
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        let out = strict("crates/obs/src/x.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn hier_crate_is_not_a_socket_or_spawn_sanctuary() {
        // The aggregation-tree crate is deliberately thread- and
        // socket-free: its staged driver sequences every tier on the
        // caller's thread and reaches the network only through the
        // transport traits. Rules 5/6 must therefore flag any direct
        // socket or spawn that creeps in — pin the sanctuary lists so a
        // future edit cannot quietly exempt the crate.
        assert!(!super::SOCKET_SANCTUARY.starts_with("crates/hier"));
        for sanctioned in super::SPAWN_SANCTUARY_FILES {
            assert!(
                !sanctioned.starts_with("crates/hier"),
                "crates/hier must stay out of the spawn sanctuary: {sanctioned}"
            );
        }
        let socket = "fn f() { let _ = std::net::TcpStream; }\n";
        let out = strict("crates/hier/src/run.rs", socket);
        assert!(
            out.diagnostics.iter().any(|d| d.rule == "socket"),
            "{:?}",
            out.diagnostics
        );
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        let out = strict("crates/hier/src/run.rs", spawn);
        assert!(
            out.diagnostics.iter().any(|d| d.rule == "spawn"),
            "{:?}",
            out.diagnostics
        );
    }

    #[test]
    fn transport_timing_module_is_sanctioned() {
        let src = "fn f() { let t = Instant::now(); let _ = t; }\n";
        let out = strict("crates/transport/src/timing.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        let out = strict("crates/transport/src/tcp.rs", src);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, "timing");
        let out = scan_source(
            "crates/transport/src/tcp.rs",
            src,
            Profile::Relaxed,
            &Allowlist::default(),
        );
        assert_eq!(out.diagnostics.len(), 1, "{:?}", out.diagnostics);
        assert_eq!(out.diagnostics[0].rule, "timing");
    }

    #[test]
    fn raw_strings_and_chars_are_opaque() {
        let src = "fn f() {\n    let s = r#\"panic!( .unwrap() \"#;\n    let c = '\\u{1F600}';\n    let _ = (s, c);\n}\n";
        let out = strict("crates/linalg/src/x.rs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn allowlist_parse_ignores_comments_and_blanks() {
        let a = Allowlist::parse("# header\n\ncrates/a/src/x.rs 2\n  crates/b/src/y.rs   1  \n");
        assert_eq!(a.allowed("crates/a/src/x.rs"), 2);
        assert_eq!(a.allowed("crates/b/src/y.rs"), 1);
        assert_eq!(a.allowed("crates/c/src/z.rs"), 0);
    }
}
