//! Library surface of the `xtask` static-analysis driver, exposed so the
//! golden-file and differential integration tests can exercise the engines
//! without shelling out to the binary.
//!
//! * [`lexer`] — the dependency-free Rust lexer / delimiter matcher.
//! * [`rules`] — the token-level rule engine (rules 1–9) behind `audit`.
//! * [`scan`] — the legacy line-based scanner (rules 1–6), kept as the
//!   differential-testing oracle for the token engine.
//! * [`report`] — the SARIF 2.1.0 report writer for `--report-out`.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
