//! Command-line driver: run Fed-SC on generated data with every knob
//! exposed as a `key=value` argument, printing a full metrics report.
//!
//! ```sh
//! cargo run --release --example fedsc_cli -- l=10 z=60 lprime=2 per=10 \
//!     backend=tsc noise=0.0 dp_eps=0 seed=7
//! ```
//!
//! Keys (all optional): `l` subspaces, `d` subspace dim, `n` ambient dim,
//! `z` devices, `lprime` clusters/device, `per` points per cluster-owner,
//! `backend` = `ssc` | `tsc`, `noise` channel delta, `dp_eps` per-sample DP
//! epsilon (0 = off), `seed`.

use fedsc::{CentralBackend, ClusterCountPolicy, FedSc, FedScConfig};
use fedsc_clustering::conn::connectivity;
use fedsc_clustering::{clustering_accuracy, normalized_mutual_information};
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use fedsc_federated::privacy::DpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let args: HashMap<String, String> = std::env::args()
        .skip(1)
        .filter_map(|a| {
            a.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect();
    let get_usize = |k: &str, d: usize| args.get(k).and_then(|v| v.parse().ok()).unwrap_or(d);
    let get_f64 = |k: &str, d: f64| args.get(k).and_then(|v| v.parse().ok()).unwrap_or(d);

    let l = get_usize("l", 10);
    let d = get_usize("d", 5);
    let n = get_usize("n", 20);
    let z = get_usize("z", 60);
    let l_prime = get_usize("lprime", 2).clamp(1, l);
    let per = get_usize("per", 10);
    let seed = get_usize("seed", 7) as u64;
    let noise = get_f64("noise", 0.0);
    let dp_eps = get_f64("dp_eps", 0.0);
    let backend = match args.get("backend").map(String::as_str) {
        Some("tsc") => CentralBackend::Tsc { q: None },
        _ => CentralBackend::Ssc,
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let owners = (z * l_prime).div_ceil(l).max(1);
    let cfg = SyntheticConfig {
        ambient_dim: n,
        subspace_dim: d,
        num_subspaces: l,
        points_per_subspace: per * owners,
        noise_std: 0.0,
    };
    let ds = generate(&cfg, &mut rng);
    let part = if l_prime >= l {
        Partition::Iid
    } else {
        Partition::NonIid { l_prime }
    };
    let fed = partition_dataset(&ds.data, z, part, &mut rng);
    let truth = fed.global_truth();

    let mut fc = FedScConfig::new(l, backend);
    fc.cluster_count = ClusterCountPolicy::Fixed(l_prime);
    fc.channel.noise_delta = noise;
    if dp_eps > 0.0 {
        fc.dp = Some(DpConfig::new(dp_eps, 1e-5));
    }
    fc.seed = seed;

    println!(
        "fed-sc: L={l} d={d} n={n} Z={z} L'={l_prime} N={} backend={:?} noise={noise} dp_eps={dp_eps}",
        ds.data.len(),
        backend
    );
    let out = FedSc::new(fc).run(&fed).expect("Fed-SC run");

    println!(
        "ACC   = {:.2}%",
        clustering_accuracy(&truth, &out.predictions)
    );
    println!(
        "NMI   = {:.2}%",
        normalized_mutual_information(&truth, &out.predictions)
    );
    if ds.data.len() <= 3000 {
        let g = out.induced_global_affinity();
        let c = connectivity(&g, &truth).expect("connectivity");
        println!("CONN  = {:.4} (min) / {:.4} (mean)", c.min, c.mean);
    }
    println!(
        "time  = {:.3}s sequential, {:.3}s parallel, {:.3}s server",
        out.sequential_time().as_secs_f64(),
        out.parallel_time().as_secs_f64(),
        out.server_time.as_secs_f64()
    );
    println!(
        "comm  = {} uplink + {} downlink bits over {} devices (one shot)",
        out.comm.uplink_bits,
        out.comm.downlink_bits,
        fed.devices.len()
    );
    println!("r^(z) = {:?}", {
        let mut h = HashMap::new();
        for &r in &out.local_cluster_counts {
            *h.entry(r).or_insert(0usize) += 1;
        }
        let mut v: Vec<_> = h.into_iter().collect();
        v.sort();
        v
    });
    if dp_eps > 0.0 {
        println!(
            "DP    = worst device ({:.1}, {:.1e}) after composition",
            out.privacy.max_device_epsilon, out.privacy.max_device_delta
        );
    }
}
