//! Robustness of the one-shot round to an unreliable uplink: sweep the
//! communication-noise level `delta` and quantization width, and watch
//! Fed-SC's accuracy and communication cost respond (the Fig. 7 experiment
//! in miniature, plus the quantization knob from Section IV-E).
//!
//! ```sh
//! cargo run --release --example noisy_uplink
//! ```

use fedsc::{CentralBackend, ClusterCountPolicy, FedSc, FedScConfig};
use fedsc_clustering::clustering_accuracy;
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let l = 10;
    let l_prime = 2;
    let devices = 60;
    let ds = generate(
        &SyntheticConfig::paper(l, 12 * devices * l_prime / l),
        &mut rng,
    );
    let fed = partition_dataset(&ds.data, devices, Partition::NonIid { l_prime }, &mut rng);
    let truth = fed.global_truth();
    println!(
        "{} points, {l} subspaces, {devices} devices (Non-IID-{l_prime})\n",
        ds.data.len()
    );

    println!("## Gaussian uplink noise (variance delta / sqrt(r))");
    println!("{:>8}  {:>8}", "delta", "ACC%");
    for delta in [0.0, 0.05, 0.2, 0.5, 1.0, 2.0, 4.0] {
        let mut cfg = FedScConfig::new(l, CentralBackend::Ssc);
        cfg.cluster_count = ClusterCountPolicy::Fixed(l_prime);
        cfg.channel.noise_delta = delta;
        let out = FedSc::new(cfg).run(&fed).expect("Fed-SC run");
        println!(
            "{delta:>8.3}  {:>8.2}",
            clustering_accuracy(&truth, &out.predictions)
        );
    }

    println!("\n## Scalar quantization of the uploaded samples");
    println!("{:>8}  {:>8}  {:>12}", "bits", "ACC%", "uplink bits");
    for bits in [64u32, 16, 8, 6, 4] {
        let mut cfg = FedScConfig::new(l, CentralBackend::Ssc);
        cfg.cluster_count = ClusterCountPolicy::Fixed(l_prime);
        cfg.channel.bits_per_scalar = bits;
        let out = FedSc::new(cfg).run(&fed).expect("Fed-SC run");
        println!(
            "{bits:>8}  {:>8.2}  {:>12}",
            clustering_accuracy(&truth, &out.predictions),
            out.comm.uplink_bits
        );
    }

    println!(
        "\nShape to notice: accuracy is flat over a wide noise/quantization\n\
         range and degrades gracefully — the central SC step inherits the\n\
         noise robustness of SSC/TSC (Section IV-E of the paper)."
    );
}
