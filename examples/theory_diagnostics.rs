//! Section V in action: generate a federated union-of-subspaces instance
//! and evaluate the paper's theoretical quantities on it — subspace
//! affinities against the Corollary 1/2 bounds, active sets and the
//! heterogeneity summary, inradius and incoherence estimates, and the
//! SEP / exact-clustering criteria of the graphs Fed-SC actually builds.
//!
//! ```sh
//! cargo run --release --example theory_diagnostics
//! ```

use fedsc::{CentralBackend, FedSc, FedScConfig};
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use fedsc_subspace::theory::{
    active_sets, holds_exact_clustering, holds_sep, inradius_estimate, semi_random_margin,
    sep_violation, ssc_affinity_bound, tsc_affinity_bound, tsc_q_range, Heterogeneity,
};
use fedsc_subspace::{Ssc, SubspaceClusterer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let l = 6;
    let d = 3;
    let cfg = SyntheticConfig {
        ambient_dim: 30,
        subspace_dim: d,
        num_subspaces: l,
        points_per_subspace: 96,
        noise_std: 0.0,
    };
    let ds = generate(&cfg, &mut rng);
    let devices = 24;
    let l_prime = 2;
    let fed = partition_dataset(&ds.data, devices, Partition::NonIid { l_prime }, &mut rng);

    println!("instance: L = {l} subspaces (d = {d}) in R^30, Z = {devices}, L' = {l_prime}\n");

    // --- Heterogeneity and active sets (Definitions 2-3). ---
    let dev_labels = fed.device_labels();
    let het = Heterogeneity::from_device_labels(&dev_labels, l);
    println!(
        "Z_l (devices per subspace) = {:?}",
        het.devices_per_subspace
    );
    println!(
        "L^(z) (subspaces per device) = {:?}",
        het.subspaces_per_device
    );
    println!("heterogeneous: {}", het.is_heterogeneous(l));
    let active = active_sets(&dev_labels, l);
    for (s, a) in active.iter().enumerate() {
        println!("alpha({s}) = {a:?}");
    }

    // --- Semi-random conditions (Corollaries 1-2). ---
    let z_prime = *het.devices_per_subspace.iter().min().unwrap_or(&1);
    let aff_max = ds.model.max_normalized_affinity() * (d as f64).sqrt();
    let b_ssc = ssc_affinity_bound(d, l, l_prime, z_prime, 1.0, 1.0);
    let b_tsc = tsc_affinity_bound(d, l, l_prime, z_prime);
    println!("\nmax pairwise affinity      = {aff_max:.4}");
    println!(
        "Corollary 1 (SSC) bound    = {b_ssc:.4} (margin {:+.4})",
        semi_random_margin(&ds.model, b_ssc).expect("model bases share ambient dimension")
    );
    println!(
        "Corollary 2 (TSC) bound    = {b_tsc:.4} (margin {:+.4})",
        semi_random_margin(&ds.model, b_tsc).expect("model bases share ambient dimension")
    );
    match tsc_q_range(d, l_prime, z_prime, z_prime) {
        Some((lo, hi)) => println!("Theorem 2 q-range          = [{lo:.1}, {hi:.1}]"),
        None => println!(
            "Theorem 2 q-range          = empty (Z_l must grow exponentially in d; \
             the paper's own caveat)"
        ),
    }

    // --- Deterministic-side quantities on one device. ---
    let dev = &fed.devices[0];
    let r =
        inradius_estimate(&dev.data, Some(0), 30, &mut rng).expect("device data is well-formed");
    println!("\ninradius estimate on device 0 (excluding point 0) = {r:.4}");

    // --- SEP / exact clustering of the graphs Fed-SC builds. ---
    let local_graph = Ssc::default().affinity(&dev.data).expect("local SSC graph");
    println!(
        "device 0 local SSC graph: SEP violation = {:.2e}, SEP(1e-3) = {}",
        sep_violation(&local_graph, &dev.labels),
        holds_sep(&local_graph, &dev.labels, 1e-3)
    );

    let out = FedSc::new(FedScConfig::new(l, CentralBackend::Ssc))
        .run(&fed)
        .expect("Fed-SC run");
    let induced = out.induced_global_affinity();
    let truth = fed.global_truth();
    println!(
        "induced global graph: SEP(1e-3) = {}, exact clustering(1e-3) = {}",
        holds_sep(&induced, &truth, 1e-3),
        holds_exact_clustering(&induced, &truth, 1e-3)
    );
    println!(
        "final accuracy = {:.2}%",
        fedsc_clustering::clustering_accuracy(&truth, &out.predictions)
    );
}
