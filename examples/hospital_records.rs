//! Federated clustering of high-dimensional "health-record" feature
//! vectors across hospitals — the motivating scenario of the paper's
//! introduction: sensitive data that cannot leave its silo, features far
//! higher-dimensional than any one silo's sample count, and strong
//! statistical heterogeneity (each hospital specializes in a few
//! conditions).
//!
//! Uses the EMNIST-like surrogate generator as a stand-in for record
//! embeddings (each condition concentrates near a low-dimensional subspace
//! of the feature space) and compares Fed-SC against k-FED on the same
//! partition.
//!
//! ```sh
//! cargo run --release --example hospital_records
//! ```

use fedsc::{BasisDim, CentralBackend, ClusterCountPolicy, FedSc, FedScConfig};
use fedsc_clustering::{clustering_accuracy, normalized_mutual_information};
use fedsc_data::realworld::{generate, SurrogateSpec};
use fedsc_federated::kfed::{kfed, KFedConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // 10 conditions, ~500-dimensional record embeddings, imbalanced cohort
    // sizes, mild measurement noise.
    let spec = SurrogateSpec::emnist_like(0.15).with_classes(10);
    let ds = generate(&spec, &mut rng);
    let l = spec.num_classes;
    println!(
        "cohort: {} records, {} conditions, {}-dimensional embeddings",
        ds.data.len(),
        l,
        spec.ambient_dim
    );
    println!("class sizes (imbalanced): {:?}", ds.class_sizes);

    // 30 hospitals; each specializes in 3 of the 10 conditions.
    let hospitals = 30;
    let l_prime = 3;
    let fed = partition_dataset(&ds.data, hospitals, Partition::NonIid { l_prime }, &mut rng);
    let truth = fed.global_truth();
    println!("hospitals: {hospitals}, {l_prime} conditions each\n");

    // Fed-SC with the paper's real-data settings: fixed local-cluster upper
    // bound and rank-1 subspace sketches.
    let mut cfg = FedScConfig::new(l, CentralBackend::Ssc);
    cfg.cluster_count = ClusterCountPolicy::Fixed(l_prime + 1);
    cfg.basis_dim = BasisDim::Fixed(1);
    let out = FedSc::new(cfg).run(&fed).expect("Fed-SC run");
    println!(
        "Fed-SC (SSC): ACC {:.2}%  NMI {:.2}%  uplink {} KiB  time {:.2}s",
        clustering_accuracy(&truth, &out.predictions),
        normalized_mutual_information(&truth, &out.predictions),
        out.comm.uplink_bits / 8 / 1024,
        out.sequential_time().as_secs_f64()
    );

    // k-FED baseline on the identical partition.
    let kf = kfed(&fed, &KFedConfig::new(l, l_prime)).expect("k-FED run");
    println!(
        "k-FED       : ACC {:.2}%  NMI {:.2}%  uplink {} KiB  time {:.2}s",
        clustering_accuracy(&truth, &kf.predictions),
        normalized_mutual_information(&truth, &kf.predictions),
        kf.comm.uplink_bits / 8 / 1024,
        (kf.local_timing.sequential + kf.server_time).as_secs_f64()
    );

    println!(
        "\nNo raw record ever left a hospital: each uploaded only {} unit\n\
         vectors (one per local condition cluster) in a single round.",
        out.samples.cols() / hospitals
    );
}
