//! Wire-level Fed-SC: devices and the server as separate threads exchanging
//! encoded byte messages — the deployment shape of Algorithm 1 — checked
//! against the in-process scheme for bit-identical output.
//!
//! ```sh
//! cargo run --release --example wire_protocol
//! ```

use fedsc::wire::run_over_wire;
use fedsc::{CentralBackend, FedSc, FedScConfig};
use fedsc_clustering::clustering_accuracy;
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let l = 6;
    let ds = generate(&SyntheticConfig::paper(l, 96), &mut rng);
    let fed = partition_dataset(&ds.data, 24, Partition::NonIid { l_prime: 2 }, &mut rng);
    let truth = fed.global_truth();
    let cfg = FedScConfig::new(l, CentralBackend::Ssc);

    // The in-process orchestration...
    let in_process = FedSc::new(cfg.clone()).run(&fed).expect("in-process run");
    // ...and the same round as 24 device threads + 1 server thread passing
    // length-prefixed byte payloads over channels.
    let wire = run_over_wire(&fed, &cfg).expect("wire run");

    println!(
        "in-process ACC = {:.2}%",
        clustering_accuracy(&truth, &in_process.predictions)
    );
    println!(
        "wire       ACC = {:.2}%",
        clustering_accuracy(&truth, &wire.predictions)
    );
    println!(
        "identical output: {}",
        in_process.predictions == wire.predictions
    );
    println!(
        "bytes on the wire: {} up / {} down ({} devices, one round)",
        wire.uplink_bytes,
        wire.downlink_bytes,
        fed.devices.len()
    );
    let raw_bytes = 8 * ds.data.data.rows() * ds.data.len();
    println!(
        "vs shipping raw data: {} bytes ({}x saving)",
        raw_bytes,
        raw_bytes / wire.uplink_bytes.max(1)
    );
}
