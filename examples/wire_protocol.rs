//! Wire-level Fed-SC: devices and the server as separate threads exchanging
//! encoded byte messages — the deployment shape of Algorithm 1 — checked
//! against the in-process scheme for bit-identical output, then replayed
//! over a real TCP loopback and over a seeded faulty link.
//!
//! ```sh
//! cargo run --release --example wire_protocol
//! ```

use fedsc::wire::run_over_wire;
use fedsc::{run_round, CentralBackend, FedSc, FedScConfig, RoundPolicy};
use fedsc_clustering::clustering_accuracy;
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use fedsc_transport::{FaultConfig, FaultyInMemoryTransport, TcpTransport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let l = 6;
    let ds = generate(&SyntheticConfig::paper(l, 96), &mut rng);
    let fed = partition_dataset(&ds.data, 24, Partition::NonIid { l_prime: 2 }, &mut rng);
    let truth = fed.global_truth();
    let cfg = FedScConfig::new(l, CentralBackend::Ssc);

    // The in-process orchestration...
    let in_process = FedSc::new(cfg.clone()).run(&fed).expect("in-process run");
    // ...and the same round as 24 device threads + 1 server thread passing
    // length-prefixed byte payloads over channels.
    let wire = run_over_wire(&fed, &cfg).expect("wire run");

    println!(
        "in-process ACC = {:.2}%",
        clustering_accuracy(&truth, &in_process.predictions)
    );
    println!(
        "wire       ACC = {:.2}%",
        clustering_accuracy(&truth, &wire.predictions)
    );
    println!(
        "identical output: {}",
        in_process.predictions == wire.predictions
    );
    println!(
        "bytes on the wire: {} up / {} down ({} devices, one round)",
        wire.uplink_bytes,
        wire.downlink_bytes,
        fed.devices.len()
    );
    let raw_bytes = 8 * ds.data.data.rows() * ds.data.len();
    println!(
        "vs shipping raw data: {} bytes ({}x saving)",
        raw_bytes,
        raw_bytes / wire.uplink_bytes.max(1)
    );

    // The same round over real TCP sockets on 127.0.0.1 — framed, CRC'd,
    // version-handshaked. Byte totals are wire-true (headers + handshake),
    // so they run strictly heavier than the payload-only channel counts.
    let policy = RoundPolicy::default();
    let tcp = run_round(&fed, &cfg, &TcpTransport::loopback(), &policy).expect("tcp round");
    println!(
        "tcp loopback: identical output: {}, {} up / {} down (framing overhead {} B)",
        tcp.predictions == in_process.predictions,
        tcp.uplink_bytes,
        tcp.downlink_bytes,
        (tcp.uplink_bytes + tcp.downlink_bytes) - (wire.uplink_bytes + wire.downlink_bytes)
    );

    // A hostile link: seeded drops, duplicates, truncations and bit flips.
    // Sender-side retries (exponential backoff, transient errors only)
    // absorb every fault, and the output is still bit-identical — the
    // fault schedule is a pure function of the seed, so this printout is
    // reproducible run after run.
    let faults = FaultConfig {
        seed: 7,
        drop: 0.2,
        duplicate: 0.1,
        truncate: 0.1,
        bit_flip: 0.1,
        ..FaultConfig::default()
    };
    let lossy_policy = RoundPolicy {
        max_retries: 25,
        retry_backoff: Duration::from_millis(1),
        ..RoundPolicy::default()
    };
    let faulty = FaultyInMemoryTransport::new(faults);
    let lossy = run_round(&fed, &cfg, &faulty, &lossy_policy).expect("lossy round");
    let transcript = faulty.transcript();
    println!(
        "faulty link:  identical output: {}, {} link events ({} drops) absorbed by retries",
        lossy.predictions == in_process.predictions,
        transcript.lines().count(),
        transcript.lines().filter(|l| l.contains("drop")).count()
    );
}
