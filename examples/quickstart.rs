//! Quickstart: cluster synthetic union-of-subspaces data spread over a
//! federated network with one round of communication.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fedsc::{CentralBackend, FedSc, FedScConfig};
use fedsc_clustering::{clustering_accuracy, normalized_mutual_information};
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // The paper's synthetic model: L = 8 subspaces of dimension 5 in R^20,
    // 144 unit-norm points per subspace.
    let l = 8;
    let dataset = generate(&SyntheticConfig::paper(l, 144), &mut rng);
    println!(
        "dataset: {} points on {} subspaces (d = 5) in R^20",
        dataset.data.len(),
        l
    );

    // Distribute over 48 devices; each device only sees points from 2 of
    // the 8 clusters (statistical heterogeneity, the paper's key lever).
    let fed = partition_dataset(
        &dataset.data,
        48,
        Partition::NonIid { l_prime: 2 },
        &mut rng,
    );
    println!("devices: {} (2 clusters per device)", fed.devices.len());

    // One-shot Fed-SC with a central SSC.
    let scheme = FedSc::new(FedScConfig::new(l, CentralBackend::Ssc));
    let out = scheme.run(&fed).expect("Fed-SC run");

    let truth = fed.global_truth();
    println!(
        "ACC  = {:.2}%",
        clustering_accuracy(&truth, &out.predictions)
    );
    println!(
        "NMI  = {:.2}%",
        normalized_mutual_information(&truth, &out.predictions)
    );
    println!(
        "comm = {} uplink bits + {} downlink bits in exactly one round",
        out.comm.uplink_bits, out.comm.downlink_bits
    );
    println!(
        "time = {:.3}s sequential ({:.3}s parallel), server {:.3}s",
        out.sequential_time().as_secs_f64(),
        out.parallel_time().as_secs_f64(),
        out.server_time.as_secs_f64()
    );
    println!(
        "each device uploaded ~{} samples of R^20 (one per local cluster)",
        out.samples.cols() / fed.devices.len().max(1)
    );
}
