/root/repo/target/debug/deps/kernels-c69322da12beb242.d: /root/repo/clippy.toml crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-c69322da12beb242.rmeta: /root/repo/clippy.toml crates/bench/benches/kernels.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
