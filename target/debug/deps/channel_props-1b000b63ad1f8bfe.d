/root/repo/target/debug/deps/channel_props-1b000b63ad1f8bfe.d: crates/federated/tests/channel_props.rs

/root/repo/target/debug/deps/channel_props-1b000b63ad1f8bfe: crates/federated/tests/channel_props.rs

crates/federated/tests/channel_props.rs:
