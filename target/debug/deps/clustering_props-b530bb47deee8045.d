/root/repo/target/debug/deps/clustering_props-b530bb47deee8045.d: /root/repo/clippy.toml crates/clustering/tests/clustering_props.rs Cargo.toml

/root/repo/target/debug/deps/libclustering_props-b530bb47deee8045.rmeta: /root/repo/clippy.toml crates/clustering/tests/clustering_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/clustering/tests/clustering_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
