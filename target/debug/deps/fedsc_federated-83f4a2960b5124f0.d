/root/repo/target/debug/deps/fedsc_federated-83f4a2960b5124f0.d: /root/repo/clippy.toml crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_federated-83f4a2960b5124f0.rmeta: /root/repo/clippy.toml crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs Cargo.toml

/root/repo/clippy.toml:
crates/federated/src/lib.rs:
crates/federated/src/channel.rs:
crates/federated/src/kfed.rs:
crates/federated/src/parallel.rs:
crates/federated/src/partition.rs:
crates/federated/src/privacy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
