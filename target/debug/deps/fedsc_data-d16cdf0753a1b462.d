/root/repo/target/debug/deps/fedsc_data-d16cdf0753a1b462.d: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libfedsc_data-d16cdf0753a1b462.rlib: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libfedsc_data-d16cdf0753a1b462.rmeta: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/realworld.rs:
crates/data/src/synthetic.rs:
