/root/repo/target/debug/deps/laplacian_props-d820ab83c11d8416.d: crates/graph/tests/laplacian_props.rs

/root/repo/target/debug/deps/laplacian_props-d820ab83c11d8416: crates/graph/tests/laplacian_props.rs

crates/graph/tests/laplacian_props.rs:
