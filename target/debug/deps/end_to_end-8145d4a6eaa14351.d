/root/repo/target/debug/deps/end_to_end-8145d4a6eaa14351.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8145d4a6eaa14351: tests/end_to_end.rs

tests/end_to_end.rs:
