/root/repo/target/debug/deps/privacy-0417f041357d524e.d: crates/bench/src/bin/privacy.rs

/root/repo/target/debug/deps/privacy-0417f041357d524e: crates/bench/src/bin/privacy.rs

crates/bench/src/bin/privacy.rs:
