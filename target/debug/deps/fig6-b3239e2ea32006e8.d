/root/repo/target/debug/deps/fig6-b3239e2ea32006e8.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b3239e2ea32006e8: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
