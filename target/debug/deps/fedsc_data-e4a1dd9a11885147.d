/root/repo/target/debug/deps/fedsc_data-e4a1dd9a11885147.d: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libfedsc_data-e4a1dd9a11885147.rlib: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libfedsc_data-e4a1dd9a11885147.rmeta: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/realworld.rs:
crates/data/src/synthetic.rs:
