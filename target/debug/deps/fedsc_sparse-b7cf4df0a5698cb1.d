/root/repo/target/debug/deps/fedsc_sparse-b7cf4df0a5698cb1.d: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

/root/repo/target/debug/deps/fedsc_sparse-b7cf4df0a5698cb1: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

crates/sparse/src/lib.rs:
crates/sparse/src/admm.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/elastic_net.rs:
crates/sparse/src/lasso.rs:
crates/sparse/src/omp.rs:
crates/sparse/src/vec.rs:
