/root/repo/target/debug/deps/ablation-8c9ca39f2ac9ddd0.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-8c9ca39f2ac9ddd0: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
