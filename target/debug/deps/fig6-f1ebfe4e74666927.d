/root/repo/target/debug/deps/fig6-f1ebfe4e74666927.d: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-f1ebfe4e74666927.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
