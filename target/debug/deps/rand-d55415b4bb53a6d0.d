/root/repo/target/debug/deps/rand-d55415b4bb53a6d0.d: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-d55415b4bb53a6d0.rmeta: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
