/root/repo/target/debug/deps/ablation_solvers-8653b8ada110ea46.d: /root/repo/clippy.toml crates/bench/benches/ablation_solvers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_solvers-8653b8ada110ea46.rmeta: /root/repo/clippy.toml crates/bench/benches/ablation_solvers.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/ablation_solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
