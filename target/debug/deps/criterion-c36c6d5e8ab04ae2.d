/root/repo/target/debug/deps/criterion-c36c6d5e8ab04ae2.d: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-c36c6d5e8ab04ae2.rmeta: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
