/root/repo/target/debug/deps/table3-c06d4d2caa7586d9.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-c06d4d2caa7586d9: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
