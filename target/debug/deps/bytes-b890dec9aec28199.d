/root/repo/target/debug/deps/bytes-b890dec9aec28199.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-b890dec9aec28199: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
