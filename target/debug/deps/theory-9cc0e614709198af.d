/root/repo/target/debug/deps/theory-9cc0e614709198af.d: tests/theory.rs

/root/repo/target/debug/deps/theory-9cc0e614709198af: tests/theory.rs

tests/theory.rs:
