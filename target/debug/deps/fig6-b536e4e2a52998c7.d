/root/repo/target/debug/deps/fig6-b536e4e2a52998c7.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b536e4e2a52998c7: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
