/root/repo/target/debug/deps/ablation-455b7ac2235c4a21.d: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-455b7ac2235c4a21.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
