/root/repo/target/debug/deps/bytes-f9a17bf63b2d251a.d: /root/repo/clippy.toml vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-f9a17bf63b2d251a.rmeta: /root/repo/clippy.toml vendor/bytes/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
