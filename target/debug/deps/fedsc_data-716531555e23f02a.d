/root/repo/target/debug/deps/fedsc_data-716531555e23f02a.d: /root/repo/clippy.toml crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_data-716531555e23f02a.rmeta: /root/repo/clippy.toml crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/clippy.toml:
crates/data/src/lib.rs:
crates/data/src/realworld.rs:
crates/data/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
