/root/repo/target/debug/deps/fedsc-4507621a9cbf988f.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc-4507621a9cbf988f.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/central.rs:
crates/core/src/config.rs:
crates/core/src/local.rs:
crates/core/src/scheme.rs:
crates/core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
