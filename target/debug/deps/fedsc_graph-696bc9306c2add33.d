/root/repo/target/debug/deps/fedsc_graph-696bc9306c2add33.d: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

/root/repo/target/debug/deps/libfedsc_graph-696bc9306c2add33.rlib: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

/root/repo/target/debug/deps/libfedsc_graph-696bc9306c2add33.rmeta: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

crates/graph/src/lib.rs:
crates/graph/src/affinity.rs:
crates/graph/src/laplacian.rs:
