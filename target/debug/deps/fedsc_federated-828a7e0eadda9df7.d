/root/repo/target/debug/deps/fedsc_federated-828a7e0eadda9df7.d: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

/root/repo/target/debug/deps/fedsc_federated-828a7e0eadda9df7: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

crates/federated/src/lib.rs:
crates/federated/src/channel.rs:
crates/federated/src/kfed.rs:
crates/federated/src/parallel.rs:
crates/federated/src/partition.rs:
crates/federated/src/privacy.rs:
