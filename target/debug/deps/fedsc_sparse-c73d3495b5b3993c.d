/root/repo/target/debug/deps/fedsc_sparse-c73d3495b5b3993c.d: /root/repo/clippy.toml crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_sparse-c73d3495b5b3993c.rmeta: /root/repo/clippy.toml crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs Cargo.toml

/root/repo/clippy.toml:
crates/sparse/src/lib.rs:
crates/sparse/src/admm.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/elastic_net.rs:
crates/sparse/src/lasso.rs:
crates/sparse/src/omp.rs:
crates/sparse/src/vec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
