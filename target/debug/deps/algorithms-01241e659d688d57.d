/root/repo/target/debug/deps/algorithms-01241e659d688d57.d: /root/repo/clippy.toml crates/subspace/tests/algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libalgorithms-01241e659d688d57.rmeta: /root/repo/clippy.toml crates/subspace/tests/algorithms.rs Cargo.toml

/root/repo/clippy.toml:
crates/subspace/tests/algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
