/root/repo/target/debug/deps/clustering_props-d8a4aa5aa2bf8cac.d: crates/clustering/tests/clustering_props.rs

/root/repo/target/debug/deps/clustering_props-d8a4aa5aa2bf8cac: crates/clustering/tests/clustering_props.rs

crates/clustering/tests/clustering_props.rs:
