/root/repo/target/debug/deps/fedsc_sparse-3aa4f794d2116216.d: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

/root/repo/target/debug/deps/libfedsc_sparse-3aa4f794d2116216.rlib: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

/root/repo/target/debug/deps/libfedsc_sparse-3aa4f794d2116216.rmeta: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

crates/sparse/src/lib.rs:
crates/sparse/src/admm.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/elastic_net.rs:
crates/sparse/src/lasso.rs:
crates/sparse/src/omp.rs:
crates/sparse/src/vec.rs:
