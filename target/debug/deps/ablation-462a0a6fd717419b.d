/root/repo/target/debug/deps/ablation-462a0a6fd717419b.d: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-462a0a6fd717419b.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
