/root/repo/target/debug/deps/surrogate_props-21da1df97df8ad4d.d: /root/repo/clippy.toml crates/data/tests/surrogate_props.rs Cargo.toml

/root/repo/target/debug/deps/libsurrogate_props-21da1df97df8ad4d.rmeta: /root/repo/clippy.toml crates/data/tests/surrogate_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/data/tests/surrogate_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
