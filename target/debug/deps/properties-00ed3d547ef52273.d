/root/repo/target/debug/deps/properties-00ed3d547ef52273.d: tests/properties.rs

/root/repo/target/debug/deps/properties-00ed3d547ef52273: tests/properties.rs

tests/properties.rs:
