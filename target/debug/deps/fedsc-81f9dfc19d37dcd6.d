/root/repo/target/debug/deps/fedsc-81f9dfc19d37dcd6.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libfedsc-81f9dfc19d37dcd6.rlib: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libfedsc-81f9dfc19d37dcd6.rmeta: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/central.rs:
crates/core/src/config.rs:
crates/core/src/local.rs:
crates/core/src/scheme.rs:
crates/core/src/wire.rs:
