/root/repo/target/debug/deps/crossbeam-dd64b927707aad87.d: /root/repo/clippy.toml vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-dd64b927707aad87.rmeta: /root/repo/clippy.toml vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
