/root/repo/target/debug/deps/table3-3a321e7adad358b7.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-3a321e7adad358b7: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
