/root/repo/target/debug/deps/table4-a9fc74af6f93a90f.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-a9fc74af6f93a90f: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
