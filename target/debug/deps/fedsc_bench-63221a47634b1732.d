/root/repo/target/debug/deps/fedsc_bench-63221a47634b1732.d: crates/bench/src/lib.rs crates/bench/src/figures/mod.rs crates/bench/src/figures/ablation.rs crates/bench/src/figures/fig4.rs crates/bench/src/figures/fig5.rs crates/bench/src/figures/fig6.rs crates/bench/src/figures/fig7.rs crates/bench/src/figures/privacy.rs crates/bench/src/figures/table3.rs crates/bench/src/figures/table4.rs crates/bench/src/harness.rs crates/bench/src/methods.rs

/root/repo/target/debug/deps/fedsc_bench-63221a47634b1732: crates/bench/src/lib.rs crates/bench/src/figures/mod.rs crates/bench/src/figures/ablation.rs crates/bench/src/figures/fig4.rs crates/bench/src/figures/fig5.rs crates/bench/src/figures/fig6.rs crates/bench/src/figures/fig7.rs crates/bench/src/figures/privacy.rs crates/bench/src/figures/table3.rs crates/bench/src/figures/table4.rs crates/bench/src/harness.rs crates/bench/src/methods.rs

crates/bench/src/lib.rs:
crates/bench/src/figures/mod.rs:
crates/bench/src/figures/ablation.rs:
crates/bench/src/figures/fig4.rs:
crates/bench/src/figures/fig5.rs:
crates/bench/src/figures/fig6.rs:
crates/bench/src/figures/fig7.rs:
crates/bench/src/figures/privacy.rs:
crates/bench/src/figures/table3.rs:
crates/bench/src/figures/table4.rs:
crates/bench/src/harness.rs:
crates/bench/src/methods.rs:
