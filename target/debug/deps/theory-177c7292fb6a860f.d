/root/repo/target/debug/deps/theory-177c7292fb6a860f.d: /root/repo/clippy.toml tests/theory.rs Cargo.toml

/root/repo/target/debug/deps/libtheory-177c7292fb6a860f.rmeta: /root/repo/clippy.toml tests/theory.rs Cargo.toml

/root/repo/clippy.toml:
tests/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
