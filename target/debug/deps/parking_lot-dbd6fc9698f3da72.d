/root/repo/target/debug/deps/parking_lot-dbd6fc9698f3da72.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-dbd6fc9698f3da72: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
