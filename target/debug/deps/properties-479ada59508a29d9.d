/root/repo/target/debug/deps/properties-479ada59508a29d9.d: tests/properties.rs

/root/repo/target/debug/deps/properties-479ada59508a29d9: tests/properties.rs

tests/properties.rs:
