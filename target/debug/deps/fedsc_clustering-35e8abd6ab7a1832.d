/root/repo/target/debug/deps/fedsc_clustering-35e8abd6ab7a1832.d: /root/repo/clippy.toml crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_clustering-35e8abd6ab7a1832.rmeta: /root/repo/clippy.toml crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs Cargo.toml

/root/repo/clippy.toml:
crates/clustering/src/lib.rs:
crates/clustering/src/conn.rs:
crates/clustering/src/hungarian.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/metrics.rs:
crates/clustering/src/spectral.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
