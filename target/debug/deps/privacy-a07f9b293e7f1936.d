/root/repo/target/debug/deps/privacy-a07f9b293e7f1936.d: crates/bench/src/bin/privacy.rs

/root/repo/target/debug/deps/privacy-a07f9b293e7f1936: crates/bench/src/bin/privacy.rs

crates/bench/src/bin/privacy.rs:
