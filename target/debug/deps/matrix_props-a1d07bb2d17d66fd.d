/root/repo/target/debug/deps/matrix_props-a1d07bb2d17d66fd.d: /root/repo/clippy.toml crates/linalg/tests/matrix_props.rs Cargo.toml

/root/repo/target/debug/deps/libmatrix_props-a1d07bb2d17d66fd.rmeta: /root/repo/clippy.toml crates/linalg/tests/matrix_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/linalg/tests/matrix_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
