/root/repo/target/debug/deps/bytes-5cdce8947d7e8fc1.d: /root/repo/clippy.toml vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-5cdce8947d7e8fc1.rmeta: /root/repo/clippy.toml vendor/bytes/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
