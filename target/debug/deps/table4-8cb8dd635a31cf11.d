/root/repo/target/debug/deps/table4-8cb8dd635a31cf11.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-8cb8dd635a31cf11: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
