/root/repo/target/debug/deps/solver_props-c53dfa56b4e5da44.d: crates/sparse/tests/solver_props.rs

/root/repo/target/debug/deps/solver_props-c53dfa56b4e5da44: crates/sparse/tests/solver_props.rs

crates/sparse/tests/solver_props.rs:
