/root/repo/target/debug/deps/surrogate_props-2bd75a44d0c12660.d: crates/data/tests/surrogate_props.rs

/root/repo/target/debug/deps/surrogate_props-2bd75a44d0c12660: crates/data/tests/surrogate_props.rs

crates/data/tests/surrogate_props.rs:
