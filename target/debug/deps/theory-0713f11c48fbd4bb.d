/root/repo/target/debug/deps/theory-0713f11c48fbd4bb.d: tests/theory.rs

/root/repo/target/debug/deps/theory-0713f11c48fbd4bb: tests/theory.rs

tests/theory.rs:
