/root/repo/target/debug/deps/table3-ec7aafc365ed2b32.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ec7aafc365ed2b32: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
