/root/repo/target/debug/deps/table4-93e91f9d07e5d3ad.d: /root/repo/clippy.toml crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-93e91f9d07e5d3ad.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
