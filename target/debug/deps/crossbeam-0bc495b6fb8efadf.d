/root/repo/target/debug/deps/crossbeam-0bc495b6fb8efadf.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-0bc495b6fb8efadf: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
