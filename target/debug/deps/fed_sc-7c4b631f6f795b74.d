/root/repo/target/debug/deps/fed_sc-7c4b631f6f795b74.d: src/lib.rs

/root/repo/target/debug/deps/fed_sc-7c4b631f6f795b74: src/lib.rs

src/lib.rs:
