/root/repo/target/debug/deps/fedsc_data-f06fc6de4f9a2034.d: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/fedsc_data-f06fc6de4f9a2034: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/realworld.rs:
crates/data/src/synthetic.rs:
