/root/repo/target/debug/deps/ablation-cf94efa7a45330b2.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-cf94efa7a45330b2: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
