/root/repo/target/debug/deps/fedsc_linalg-cec7e765d2e40ceb.d: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/angles.rs crates/linalg/src/eigh.rs crates/linalg/src/error.rs crates/linalg/src/lanczos.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/random.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_linalg-cec7e765d2e40ceb.rmeta: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/angles.rs crates/linalg/src/eigh.rs crates/linalg/src/error.rs crates/linalg/src/lanczos.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/random.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/clippy.toml:
crates/linalg/src/lib.rs:
crates/linalg/src/angles.rs:
crates/linalg/src/eigh.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lanczos.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/random.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
