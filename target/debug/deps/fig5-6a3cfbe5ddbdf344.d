/root/repo/target/debug/deps/fig5-6a3cfbe5ddbdf344.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-6a3cfbe5ddbdf344: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
