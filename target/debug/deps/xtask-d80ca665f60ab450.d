/root/repo/target/debug/deps/xtask-d80ca665f60ab450.d: crates/xtask/src/main.rs crates/xtask/src/scan.rs

/root/repo/target/debug/deps/xtask-d80ca665f60ab450: crates/xtask/src/main.rs crates/xtask/src/scan.rs

crates/xtask/src/main.rs:
crates/xtask/src/scan.rs:
