/root/repo/target/debug/deps/fedsc_data-fd9d2bc5dfc5349d.d: /root/repo/clippy.toml crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_data-fd9d2bc5dfc5349d.rmeta: /root/repo/clippy.toml crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/clippy.toml:
crates/data/src/lib.rs:
crates/data/src/realworld.rs:
crates/data/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
