/root/repo/target/debug/deps/fedsc_graph-dd8db7a53c8feb86.d: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

/root/repo/target/debug/deps/libfedsc_graph-dd8db7a53c8feb86.rlib: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

/root/repo/target/debug/deps/libfedsc_graph-dd8db7a53c8feb86.rmeta: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

crates/graph/src/lib.rs:
crates/graph/src/affinity.rs:
crates/graph/src/laplacian.rs:
