/root/repo/target/debug/deps/fig5-4fe8aee9f3c5362c.d: /root/repo/clippy.toml crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-4fe8aee9f3c5362c.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
