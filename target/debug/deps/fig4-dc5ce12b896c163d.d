/root/repo/target/debug/deps/fig4-dc5ce12b896c163d.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-dc5ce12b896c163d: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
