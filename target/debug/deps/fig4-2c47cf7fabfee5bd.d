/root/repo/target/debug/deps/fig4-2c47cf7fabfee5bd.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-2c47cf7fabfee5bd: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
