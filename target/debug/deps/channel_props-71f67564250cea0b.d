/root/repo/target/debug/deps/channel_props-71f67564250cea0b.d: crates/federated/tests/channel_props.rs

/root/repo/target/debug/deps/channel_props-71f67564250cea0b: crates/federated/tests/channel_props.rs

crates/federated/tests/channel_props.rs:
