/root/repo/target/debug/deps/fedsc_subspace-f98b54d012b77354.d: crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs

/root/repo/target/debug/deps/fedsc_subspace-f98b54d012b77354: crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs

crates/subspace/src/lib.rs:
crates/subspace/src/algo.rs:
crates/subspace/src/ensc.rs:
crates/subspace/src/model.rs:
crates/subspace/src/nsn.rs:
crates/subspace/src/ssc.rs:
crates/subspace/src/sscomp.rs:
crates/subspace/src/theory.rs:
crates/subspace/src/tsc.rs:
