/root/repo/target/debug/deps/fedsc_bench-7defcac812b2add2.d: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/figures/mod.rs crates/bench/src/figures/ablation.rs crates/bench/src/figures/fig4.rs crates/bench/src/figures/fig5.rs crates/bench/src/figures/fig6.rs crates/bench/src/figures/fig7.rs crates/bench/src/figures/privacy.rs crates/bench/src/figures/table3.rs crates/bench/src/figures/table4.rs crates/bench/src/harness.rs crates/bench/src/methods.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_bench-7defcac812b2add2.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/figures/mod.rs crates/bench/src/figures/ablation.rs crates/bench/src/figures/fig4.rs crates/bench/src/figures/fig5.rs crates/bench/src/figures/fig6.rs crates/bench/src/figures/fig7.rs crates/bench/src/figures/privacy.rs crates/bench/src/figures/table3.rs crates/bench/src/figures/table4.rs crates/bench/src/harness.rs crates/bench/src/methods.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
crates/bench/src/figures/mod.rs:
crates/bench/src/figures/ablation.rs:
crates/bench/src/figures/fig4.rs:
crates/bench/src/figures/fig5.rs:
crates/bench/src/figures/fig6.rs:
crates/bench/src/figures/fig7.rs:
crates/bench/src/figures/privacy.rs:
crates/bench/src/figures/table3.rs:
crates/bench/src/figures/table4.rs:
crates/bench/src/harness.rs:
crates/bench/src/methods.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
