/root/repo/target/debug/deps/laplacian_props-556cbc19df3fea0b.d: /root/repo/clippy.toml crates/graph/tests/laplacian_props.rs Cargo.toml

/root/repo/target/debug/deps/liblaplacian_props-556cbc19df3fea0b.rmeta: /root/repo/clippy.toml crates/graph/tests/laplacian_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/graph/tests/laplacian_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
