/root/repo/target/debug/deps/fig5-ebe86da15bcae12b.d: /root/repo/clippy.toml crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-ebe86da15bcae12b.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
