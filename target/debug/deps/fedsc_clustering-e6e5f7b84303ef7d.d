/root/repo/target/debug/deps/fedsc_clustering-e6e5f7b84303ef7d.d: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

/root/repo/target/debug/deps/fedsc_clustering-e6e5f7b84303ef7d: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

crates/clustering/src/lib.rs:
crates/clustering/src/conn.rs:
crates/clustering/src/hungarian.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/metrics.rs:
crates/clustering/src/spectral.rs:
