/root/repo/target/debug/deps/end_to_end-edc39f7f4c8b1319.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-edc39f7f4c8b1319: tests/end_to_end.rs

tests/end_to_end.rs:
