/root/repo/target/debug/deps/fedsc_sparse-2f55e8bcf5b838cb.d: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

/root/repo/target/debug/deps/libfedsc_sparse-2f55e8bcf5b838cb.rlib: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

/root/repo/target/debug/deps/libfedsc_sparse-2f55e8bcf5b838cb.rmeta: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

crates/sparse/src/lib.rs:
crates/sparse/src/admm.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/elastic_net.rs:
crates/sparse/src/lasso.rs:
crates/sparse/src/omp.rs:
crates/sparse/src/vec.rs:
