/root/repo/target/debug/deps/fedsc_clustering-689a89f3e94cdbcf.d: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

/root/repo/target/debug/deps/libfedsc_clustering-689a89f3e94cdbcf.rlib: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

/root/repo/target/debug/deps/libfedsc_clustering-689a89f3e94cdbcf.rmeta: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

crates/clustering/src/lib.rs:
crates/clustering/src/conn.rs:
crates/clustering/src/hungarian.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/metrics.rs:
crates/clustering/src/spectral.rs:
