/root/repo/target/debug/deps/ablation-63a0ddb4a8063926.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-63a0ddb4a8063926: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
