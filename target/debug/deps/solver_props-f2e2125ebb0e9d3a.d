/root/repo/target/debug/deps/solver_props-f2e2125ebb0e9d3a.d: /root/repo/clippy.toml crates/sparse/tests/solver_props.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_props-f2e2125ebb0e9d3a.rmeta: /root/repo/clippy.toml crates/sparse/tests/solver_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/sparse/tests/solver_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
