/root/repo/target/debug/deps/fedsc_linalg-b53a0d392085a784.d: crates/linalg/src/lib.rs crates/linalg/src/angles.rs crates/linalg/src/eigh.rs crates/linalg/src/error.rs crates/linalg/src/lanczos.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/random.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libfedsc_linalg-b53a0d392085a784.rlib: crates/linalg/src/lib.rs crates/linalg/src/angles.rs crates/linalg/src/eigh.rs crates/linalg/src/error.rs crates/linalg/src/lanczos.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/random.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libfedsc_linalg-b53a0d392085a784.rmeta: crates/linalg/src/lib.rs crates/linalg/src/angles.rs crates/linalg/src/eigh.rs crates/linalg/src/error.rs crates/linalg/src/lanczos.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/random.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/angles.rs:
crates/linalg/src/eigh.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lanczos.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/random.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
