/root/repo/target/debug/deps/crossbeam-197979a6281b676d.d: /root/repo/clippy.toml vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-197979a6281b676d.rmeta: /root/repo/clippy.toml vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
