/root/repo/target/debug/deps/figures-48da0961f37aa055.d: /root/repo/clippy.toml crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-48da0961f37aa055.rmeta: /root/repo/clippy.toml crates/bench/benches/figures.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
