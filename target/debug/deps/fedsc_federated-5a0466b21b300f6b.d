/root/repo/target/debug/deps/fedsc_federated-5a0466b21b300f6b.d: /root/repo/clippy.toml crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_federated-5a0466b21b300f6b.rmeta: /root/repo/clippy.toml crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs Cargo.toml

/root/repo/clippy.toml:
crates/federated/src/lib.rs:
crates/federated/src/channel.rs:
crates/federated/src/kfed.rs:
crates/federated/src/parallel.rs:
crates/federated/src/partition.rs:
crates/federated/src/privacy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
