/root/repo/target/debug/deps/properties-af878e1a69aff00b.d: /root/repo/clippy.toml tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-af878e1a69aff00b.rmeta: /root/repo/clippy.toml tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
