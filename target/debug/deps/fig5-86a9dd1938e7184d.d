/root/repo/target/debug/deps/fig5-86a9dd1938e7184d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-86a9dd1938e7184d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
