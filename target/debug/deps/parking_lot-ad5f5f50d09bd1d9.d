/root/repo/target/debug/deps/parking_lot-ad5f5f50d09bd1d9.d: /root/repo/clippy.toml vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-ad5f5f50d09bd1d9.rmeta: /root/repo/clippy.toml vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
