/root/repo/target/debug/deps/fedsc-5fbe3afe9200c6fe.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libfedsc-5fbe3afe9200c6fe.rlib: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libfedsc-5fbe3afe9200c6fe.rmeta: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/central.rs:
crates/core/src/config.rs:
crates/core/src/local.rs:
crates/core/src/scheme.rs:
crates/core/src/wire.rs:
