/root/repo/target/debug/deps/fedsc-339ade00f966d576.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/fedsc-339ade00f966d576: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/central.rs:
crates/core/src/config.rs:
crates/core/src/local.rs:
crates/core/src/scheme.rs:
crates/core/src/wire.rs:
