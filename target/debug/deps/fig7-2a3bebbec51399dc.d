/root/repo/target/debug/deps/fig7-2a3bebbec51399dc.d: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-2a3bebbec51399dc.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
