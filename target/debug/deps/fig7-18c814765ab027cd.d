/root/repo/target/debug/deps/fig7-18c814765ab027cd.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-18c814765ab027cd: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
