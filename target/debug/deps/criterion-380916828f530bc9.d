/root/repo/target/debug/deps/criterion-380916828f530bc9.d: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-380916828f530bc9.rmeta: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
