/root/repo/target/debug/deps/fedsc_subspace-2ae9903cedd55f9e.d: crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs

/root/repo/target/debug/deps/libfedsc_subspace-2ae9903cedd55f9e.rlib: crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs

/root/repo/target/debug/deps/libfedsc_subspace-2ae9903cedd55f9e.rmeta: crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs

crates/subspace/src/lib.rs:
crates/subspace/src/algo.rs:
crates/subspace/src/ensc.rs:
crates/subspace/src/model.rs:
crates/subspace/src/nsn.rs:
crates/subspace/src/ssc.rs:
crates/subspace/src/sscomp.rs:
crates/subspace/src/theory.rs:
crates/subspace/src/tsc.rs:
