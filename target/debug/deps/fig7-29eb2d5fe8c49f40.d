/root/repo/target/debug/deps/fig7-29eb2d5fe8c49f40.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-29eb2d5fe8c49f40: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
