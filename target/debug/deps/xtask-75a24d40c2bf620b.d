/root/repo/target/debug/deps/xtask-75a24d40c2bf620b.d: crates/xtask/src/main.rs crates/xtask/src/scan.rs

/root/repo/target/debug/deps/xtask-75a24d40c2bf620b: crates/xtask/src/main.rs crates/xtask/src/scan.rs

crates/xtask/src/main.rs:
crates/xtask/src/scan.rs:
