/root/repo/target/debug/deps/xtask-f183a62e7942a50f.d: /root/repo/clippy.toml crates/xtask/src/main.rs crates/xtask/src/scan.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-f183a62e7942a50f.rmeta: /root/repo/clippy.toml crates/xtask/src/main.rs crates/xtask/src/scan.rs Cargo.toml

/root/repo/clippy.toml:
crates/xtask/src/main.rs:
crates/xtask/src/scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
