/root/repo/target/debug/deps/fedsc_graph-807ad5262742f868.d: /root/repo/clippy.toml crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_graph-807ad5262742f868.rmeta: /root/repo/clippy.toml crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs Cargo.toml

/root/repo/clippy.toml:
crates/graph/src/lib.rs:
crates/graph/src/affinity.rs:
crates/graph/src/laplacian.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
