/root/repo/target/debug/deps/fedsc_clustering-81d698a451bf40a9.d: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

/root/repo/target/debug/deps/libfedsc_clustering-81d698a451bf40a9.rlib: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

/root/repo/target/debug/deps/libfedsc_clustering-81d698a451bf40a9.rmeta: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

crates/clustering/src/lib.rs:
crates/clustering/src/conn.rs:
crates/clustering/src/hungarian.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/metrics.rs:
crates/clustering/src/spectral.rs:
