/root/repo/target/debug/deps/fed_sc-f45e558fd844c3fd.d: src/lib.rs

/root/repo/target/debug/deps/libfed_sc-f45e558fd844c3fd.rlib: src/lib.rs

/root/repo/target/debug/deps/libfed_sc-f45e558fd844c3fd.rmeta: src/lib.rs

src/lib.rs:
