/root/repo/target/debug/deps/privacy-38353cc6d2bebc6c.d: /root/repo/clippy.toml crates/bench/src/bin/privacy.rs Cargo.toml

/root/repo/target/debug/deps/libprivacy-38353cc6d2bebc6c.rmeta: /root/repo/clippy.toml crates/bench/src/bin/privacy.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/privacy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
