/root/repo/target/debug/deps/fed_sc-65103c82029cae58.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfed_sc-65103c82029cae58.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
