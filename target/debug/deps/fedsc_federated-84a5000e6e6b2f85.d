/root/repo/target/debug/deps/fedsc_federated-84a5000e6e6b2f85.d: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

/root/repo/target/debug/deps/libfedsc_federated-84a5000e6e6b2f85.rlib: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

/root/repo/target/debug/deps/libfedsc_federated-84a5000e6e6b2f85.rmeta: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

crates/federated/src/lib.rs:
crates/federated/src/channel.rs:
crates/federated/src/kfed.rs:
crates/federated/src/parallel.rs:
crates/federated/src/partition.rs:
crates/federated/src/privacy.rs:
