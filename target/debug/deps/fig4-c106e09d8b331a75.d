/root/repo/target/debug/deps/fig4-c106e09d8b331a75.d: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-c106e09d8b331a75.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
