/root/repo/target/debug/deps/fig7-1480711056bea860.d: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-1480711056bea860.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
