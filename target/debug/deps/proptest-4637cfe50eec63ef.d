/root/repo/target/debug/deps/proptest-4637cfe50eec63ef.d: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-4637cfe50eec63ef.rmeta: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
