/root/repo/target/debug/deps/proptest-a216b386b174ac43.d: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-a216b386b174ac43.rmeta: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
