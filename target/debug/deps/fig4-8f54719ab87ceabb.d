/root/repo/target/debug/deps/fig4-8f54719ab87ceabb.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-8f54719ab87ceabb: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
