/root/repo/target/debug/deps/matrix_props-ede21201a331b5cf.d: crates/linalg/tests/matrix_props.rs

/root/repo/target/debug/deps/matrix_props-ede21201a331b5cf: crates/linalg/tests/matrix_props.rs

crates/linalg/tests/matrix_props.rs:
