/root/repo/target/debug/deps/fed_sc-55e1a2ff6aa2c343.d: src/lib.rs

/root/repo/target/debug/deps/fed_sc-55e1a2ff6aa2c343: src/lib.rs

src/lib.rs:
