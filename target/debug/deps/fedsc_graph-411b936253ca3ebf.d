/root/repo/target/debug/deps/fedsc_graph-411b936253ca3ebf.d: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

/root/repo/target/debug/deps/fedsc_graph-411b936253ca3ebf: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

crates/graph/src/lib.rs:
crates/graph/src/affinity.rs:
crates/graph/src/laplacian.rs:
