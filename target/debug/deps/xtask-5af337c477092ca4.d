/root/repo/target/debug/deps/xtask-5af337c477092ca4.d: /root/repo/clippy.toml crates/xtask/src/main.rs crates/xtask/src/scan.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-5af337c477092ca4.rmeta: /root/repo/clippy.toml crates/xtask/src/main.rs crates/xtask/src/scan.rs Cargo.toml

/root/repo/clippy.toml:
crates/xtask/src/main.rs:
crates/xtask/src/scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
