/root/repo/target/debug/deps/surrogate_props-d2df4bd3dcf6e2b8.d: crates/data/tests/surrogate_props.rs

/root/repo/target/debug/deps/surrogate_props-d2df4bd3dcf6e2b8: crates/data/tests/surrogate_props.rs

crates/data/tests/surrogate_props.rs:
