/root/repo/target/debug/deps/fedsc_federated-15e42826cf9436d6.d: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

/root/repo/target/debug/deps/libfedsc_federated-15e42826cf9436d6.rlib: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

/root/repo/target/debug/deps/libfedsc_federated-15e42826cf9436d6.rmeta: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

crates/federated/src/lib.rs:
crates/federated/src/channel.rs:
crates/federated/src/kfed.rs:
crates/federated/src/parallel.rs:
crates/federated/src/partition.rs:
crates/federated/src/privacy.rs:
