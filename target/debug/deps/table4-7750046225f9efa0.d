/root/repo/target/debug/deps/table4-7750046225f9efa0.d: /root/repo/clippy.toml crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-7750046225f9efa0.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
