/root/repo/target/debug/deps/privacy-b53281558631c2f4.d: crates/bench/src/bin/privacy.rs

/root/repo/target/debug/deps/privacy-b53281558631c2f4: crates/bench/src/bin/privacy.rs

crates/bench/src/bin/privacy.rs:
