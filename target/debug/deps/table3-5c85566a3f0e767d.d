/root/repo/target/debug/deps/table3-5c85566a3f0e767d.d: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-5c85566a3f0e767d.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
