/root/repo/target/debug/deps/privacy-bc5172a9a991a353.d: /root/repo/clippy.toml crates/bench/src/bin/privacy.rs Cargo.toml

/root/repo/target/debug/deps/libprivacy-bc5172a9a991a353.rmeta: /root/repo/clippy.toml crates/bench/src/bin/privacy.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/privacy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
