/root/repo/target/debug/deps/fig6-383e28b87794c7aa.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-383e28b87794c7aa: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
