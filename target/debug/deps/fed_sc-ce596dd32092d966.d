/root/repo/target/debug/deps/fed_sc-ce596dd32092d966.d: src/lib.rs

/root/repo/target/debug/deps/libfed_sc-ce596dd32092d966.rlib: src/lib.rs

/root/repo/target/debug/deps/libfed_sc-ce596dd32092d966.rmeta: src/lib.rs

src/lib.rs:
