/root/repo/target/debug/deps/end_to_end-d429abda3a78a052.d: /root/repo/clippy.toml tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-d429abda3a78a052.rmeta: /root/repo/clippy.toml tests/end_to_end.rs Cargo.toml

/root/repo/clippy.toml:
tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
