/root/repo/target/debug/deps/fig7-3b52e401e53a37b3.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-3b52e401e53a37b3: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
