/root/repo/target/debug/deps/channel_props-68c880f72f0c0b04.d: /root/repo/clippy.toml crates/federated/tests/channel_props.rs Cargo.toml

/root/repo/target/debug/deps/libchannel_props-68c880f72f0c0b04.rmeta: /root/repo/clippy.toml crates/federated/tests/channel_props.rs Cargo.toml

/root/repo/clippy.toml:
crates/federated/tests/channel_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
