/root/repo/target/debug/deps/fig5-9f625adb51c88da5.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-9f625adb51c88da5: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
