/root/repo/target/debug/deps/algorithms-8108c735bc32978c.d: crates/subspace/tests/algorithms.rs

/root/repo/target/debug/deps/algorithms-8108c735bc32978c: crates/subspace/tests/algorithms.rs

crates/subspace/tests/algorithms.rs:
