/root/repo/target/debug/deps/table3-7ab8b8a8b3306dbd.d: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-7ab8b8a8b3306dbd.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
