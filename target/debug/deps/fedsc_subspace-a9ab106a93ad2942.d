/root/repo/target/debug/deps/fedsc_subspace-a9ab106a93ad2942.d: /root/repo/clippy.toml crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs Cargo.toml

/root/repo/target/debug/deps/libfedsc_subspace-a9ab106a93ad2942.rmeta: /root/repo/clippy.toml crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs Cargo.toml

/root/repo/clippy.toml:
crates/subspace/src/lib.rs:
crates/subspace/src/algo.rs:
crates/subspace/src/ensc.rs:
crates/subspace/src/model.rs:
crates/subspace/src/nsn.rs:
crates/subspace/src/ssc.rs:
crates/subspace/src/sscomp.rs:
crates/subspace/src/theory.rs:
crates/subspace/src/tsc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
