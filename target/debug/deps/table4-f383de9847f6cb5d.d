/root/repo/target/debug/deps/table4-f383de9847f6cb5d.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-f383de9847f6cb5d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
