/root/repo/target/debug/examples/fedsc_cli-c6776643327d8e02.d: /root/repo/clippy.toml examples/fedsc_cli.rs Cargo.toml

/root/repo/target/debug/examples/libfedsc_cli-c6776643327d8e02.rmeta: /root/repo/clippy.toml examples/fedsc_cli.rs Cargo.toml

/root/repo/clippy.toml:
examples/fedsc_cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
