/root/repo/target/debug/examples/noisy_uplink-b5f6ebe4d7095264.d: /root/repo/clippy.toml examples/noisy_uplink.rs Cargo.toml

/root/repo/target/debug/examples/libnoisy_uplink-b5f6ebe4d7095264.rmeta: /root/repo/clippy.toml examples/noisy_uplink.rs Cargo.toml

/root/repo/clippy.toml:
examples/noisy_uplink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
