/root/repo/target/debug/examples/quickstart-596191593a98b81d.d: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-596191593a98b81d.rmeta: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
