/root/repo/target/debug/examples/theory_diagnostics-d45dcfdd71e0b3b8.d: /root/repo/clippy.toml examples/theory_diagnostics.rs Cargo.toml

/root/repo/target/debug/examples/libtheory_diagnostics-d45dcfdd71e0b3b8.rmeta: /root/repo/clippy.toml examples/theory_diagnostics.rs Cargo.toml

/root/repo/clippy.toml:
examples/theory_diagnostics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
