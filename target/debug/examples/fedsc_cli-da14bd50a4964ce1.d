/root/repo/target/debug/examples/fedsc_cli-da14bd50a4964ce1.d: examples/fedsc_cli.rs

/root/repo/target/debug/examples/fedsc_cli-da14bd50a4964ce1: examples/fedsc_cli.rs

examples/fedsc_cli.rs:
