/root/repo/target/debug/examples/noisy_uplink-d4a294cf29d344c2.d: examples/noisy_uplink.rs

/root/repo/target/debug/examples/noisy_uplink-d4a294cf29d344c2: examples/noisy_uplink.rs

examples/noisy_uplink.rs:
