/root/repo/target/debug/examples/quickstart-4351f0c08f30b62d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4351f0c08f30b62d: examples/quickstart.rs

examples/quickstart.rs:
