/root/repo/target/debug/examples/quickstart-e604f4afcfb42d58.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e604f4afcfb42d58: examples/quickstart.rs

examples/quickstart.rs:
