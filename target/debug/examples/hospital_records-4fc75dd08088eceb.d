/root/repo/target/debug/examples/hospital_records-4fc75dd08088eceb.d: /root/repo/clippy.toml examples/hospital_records.rs Cargo.toml

/root/repo/target/debug/examples/libhospital_records-4fc75dd08088eceb.rmeta: /root/repo/clippy.toml examples/hospital_records.rs Cargo.toml

/root/repo/clippy.toml:
examples/hospital_records.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
