/root/repo/target/debug/examples/theory_diagnostics-d171e798e957d9c3.d: examples/theory_diagnostics.rs

/root/repo/target/debug/examples/theory_diagnostics-d171e798e957d9c3: examples/theory_diagnostics.rs

examples/theory_diagnostics.rs:
