/root/repo/target/debug/examples/hospital_records-703635a71ad649ff.d: examples/hospital_records.rs

/root/repo/target/debug/examples/hospital_records-703635a71ad649ff: examples/hospital_records.rs

examples/hospital_records.rs:
