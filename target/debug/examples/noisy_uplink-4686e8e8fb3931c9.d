/root/repo/target/debug/examples/noisy_uplink-4686e8e8fb3931c9.d: examples/noisy_uplink.rs

/root/repo/target/debug/examples/noisy_uplink-4686e8e8fb3931c9: examples/noisy_uplink.rs

examples/noisy_uplink.rs:
