/root/repo/target/debug/examples/hospital_records-9470fcf949c2d8ce.d: examples/hospital_records.rs

/root/repo/target/debug/examples/hospital_records-9470fcf949c2d8ce: examples/hospital_records.rs

examples/hospital_records.rs:
