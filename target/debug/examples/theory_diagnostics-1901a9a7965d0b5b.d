/root/repo/target/debug/examples/theory_diagnostics-1901a9a7965d0b5b.d: examples/theory_diagnostics.rs

/root/repo/target/debug/examples/theory_diagnostics-1901a9a7965d0b5b: examples/theory_diagnostics.rs

examples/theory_diagnostics.rs:
