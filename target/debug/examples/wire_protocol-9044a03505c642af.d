/root/repo/target/debug/examples/wire_protocol-9044a03505c642af.d: examples/wire_protocol.rs

/root/repo/target/debug/examples/wire_protocol-9044a03505c642af: examples/wire_protocol.rs

examples/wire_protocol.rs:
