/root/repo/target/debug/examples/wire_protocol-4553fafbbbfb9b72.d: /root/repo/clippy.toml examples/wire_protocol.rs Cargo.toml

/root/repo/target/debug/examples/libwire_protocol-4553fafbbbfb9b72.rmeta: /root/repo/clippy.toml examples/wire_protocol.rs Cargo.toml

/root/repo/clippy.toml:
examples/wire_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
