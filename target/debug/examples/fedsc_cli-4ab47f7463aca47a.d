/root/repo/target/debug/examples/fedsc_cli-4ab47f7463aca47a.d: examples/fedsc_cli.rs

/root/repo/target/debug/examples/fedsc_cli-4ab47f7463aca47a: examples/fedsc_cli.rs

examples/fedsc_cli.rs:
