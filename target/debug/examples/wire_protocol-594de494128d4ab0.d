/root/repo/target/debug/examples/wire_protocol-594de494128d4ab0.d: examples/wire_protocol.rs

/root/repo/target/debug/examples/wire_protocol-594de494128d4ab0: examples/wire_protocol.rs

examples/wire_protocol.rs:
