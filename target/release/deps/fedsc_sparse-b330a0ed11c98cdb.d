/root/repo/target/release/deps/fedsc_sparse-b330a0ed11c98cdb.d: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

/root/repo/target/release/deps/libfedsc_sparse-b330a0ed11c98cdb.rlib: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

/root/repo/target/release/deps/libfedsc_sparse-b330a0ed11c98cdb.rmeta: crates/sparse/src/lib.rs crates/sparse/src/admm.rs crates/sparse/src/csr.rs crates/sparse/src/elastic_net.rs crates/sparse/src/lasso.rs crates/sparse/src/omp.rs crates/sparse/src/vec.rs

crates/sparse/src/lib.rs:
crates/sparse/src/admm.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/elastic_net.rs:
crates/sparse/src/lasso.rs:
crates/sparse/src/omp.rs:
crates/sparse/src/vec.rs:
