/root/repo/target/release/deps/fed_sc-249e5b84f9da61c1.d: src/lib.rs

/root/repo/target/release/deps/libfed_sc-249e5b84f9da61c1.rlib: src/lib.rs

/root/repo/target/release/deps/libfed_sc-249e5b84f9da61c1.rmeta: src/lib.rs

src/lib.rs:
