/root/repo/target/release/deps/fedsc_clustering-b1f4eecc9060ac64.d: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

/root/repo/target/release/deps/libfedsc_clustering-b1f4eecc9060ac64.rlib: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

/root/repo/target/release/deps/libfedsc_clustering-b1f4eecc9060ac64.rmeta: crates/clustering/src/lib.rs crates/clustering/src/conn.rs crates/clustering/src/hungarian.rs crates/clustering/src/kmeans.rs crates/clustering/src/metrics.rs crates/clustering/src/spectral.rs

crates/clustering/src/lib.rs:
crates/clustering/src/conn.rs:
crates/clustering/src/hungarian.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/metrics.rs:
crates/clustering/src/spectral.rs:
