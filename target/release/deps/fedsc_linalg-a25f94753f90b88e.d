/root/repo/target/release/deps/fedsc_linalg-a25f94753f90b88e.d: crates/linalg/src/lib.rs crates/linalg/src/angles.rs crates/linalg/src/eigh.rs crates/linalg/src/error.rs crates/linalg/src/lanczos.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/random.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libfedsc_linalg-a25f94753f90b88e.rlib: crates/linalg/src/lib.rs crates/linalg/src/angles.rs crates/linalg/src/eigh.rs crates/linalg/src/error.rs crates/linalg/src/lanczos.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/random.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libfedsc_linalg-a25f94753f90b88e.rmeta: crates/linalg/src/lib.rs crates/linalg/src/angles.rs crates/linalg/src/eigh.rs crates/linalg/src/error.rs crates/linalg/src/lanczos.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/random.rs crates/linalg/src/solve.rs crates/linalg/src/svd.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/angles.rs:
crates/linalg/src/eigh.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lanczos.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/random.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/vector.rs:
