/root/repo/target/release/deps/fedsc_graph-ac91f2220bb2429b.d: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

/root/repo/target/release/deps/libfedsc_graph-ac91f2220bb2429b.rlib: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

/root/repo/target/release/deps/libfedsc_graph-ac91f2220bb2429b.rmeta: crates/graph/src/lib.rs crates/graph/src/affinity.rs crates/graph/src/laplacian.rs

crates/graph/src/lib.rs:
crates/graph/src/affinity.rs:
crates/graph/src/laplacian.rs:
