/root/repo/target/release/deps/fedsc_data-ac88e7024163f6a8.d: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libfedsc_data-ac88e7024163f6a8.rlib: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libfedsc_data-ac88e7024163f6a8.rmeta: crates/data/src/lib.rs crates/data/src/realworld.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/realworld.rs:
crates/data/src/synthetic.rs:
