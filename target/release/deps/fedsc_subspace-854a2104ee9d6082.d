/root/repo/target/release/deps/fedsc_subspace-854a2104ee9d6082.d: crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs

/root/repo/target/release/deps/libfedsc_subspace-854a2104ee9d6082.rlib: crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs

/root/repo/target/release/deps/libfedsc_subspace-854a2104ee9d6082.rmeta: crates/subspace/src/lib.rs crates/subspace/src/algo.rs crates/subspace/src/ensc.rs crates/subspace/src/model.rs crates/subspace/src/nsn.rs crates/subspace/src/ssc.rs crates/subspace/src/sscomp.rs crates/subspace/src/theory.rs crates/subspace/src/tsc.rs

crates/subspace/src/lib.rs:
crates/subspace/src/algo.rs:
crates/subspace/src/ensc.rs:
crates/subspace/src/model.rs:
crates/subspace/src/nsn.rs:
crates/subspace/src/ssc.rs:
crates/subspace/src/sscomp.rs:
crates/subspace/src/theory.rs:
crates/subspace/src/tsc.rs:
