/root/repo/target/release/deps/fedsc-b4e3c666c32c26fa.d: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libfedsc-b4e3c666c32c26fa.rlib: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libfedsc-b4e3c666c32c26fa.rmeta: crates/core/src/lib.rs crates/core/src/assign.rs crates/core/src/central.rs crates/core/src/config.rs crates/core/src/local.rs crates/core/src/scheme.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/assign.rs:
crates/core/src/central.rs:
crates/core/src/config.rs:
crates/core/src/local.rs:
crates/core/src/scheme.rs:
crates/core/src/wire.rs:
