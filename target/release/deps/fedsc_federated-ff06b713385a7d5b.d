/root/repo/target/release/deps/fedsc_federated-ff06b713385a7d5b.d: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

/root/repo/target/release/deps/libfedsc_federated-ff06b713385a7d5b.rlib: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

/root/repo/target/release/deps/libfedsc_federated-ff06b713385a7d5b.rmeta: crates/federated/src/lib.rs crates/federated/src/channel.rs crates/federated/src/kfed.rs crates/federated/src/parallel.rs crates/federated/src/partition.rs crates/federated/src/privacy.rs

crates/federated/src/lib.rs:
crates/federated/src/channel.rs:
crates/federated/src/kfed.rs:
crates/federated/src/parallel.rs:
crates/federated/src/partition.rs:
crates/federated/src/privacy.rs:
