/root/repo/target/release/examples/seed_probe-ce00070de06d475f.d: examples/seed_probe.rs

/root/repo/target/release/examples/seed_probe-ce00070de06d475f: examples/seed_probe.rs

examples/seed_probe.rs:
