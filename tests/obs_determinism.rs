//! Tracing must be a pure observer: a seeded `FedSc::run` with the ring
//! recorder installed must produce byte-identical results to the same run
//! under the default no-op recorder, at both 1 and 8 kernel threads. Any
//! divergence would mean a span or metric site leaked into the numerics.

#![allow(clippy::unwrap_used)]

use fed_sc::demo::demo_fixture;
use fed_sc::FedSc;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The trace recorder is process-global; serialize so one case's
/// `install_ring`/`uninstall` pair cannot interleave with another's.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs the seeded demo federation and returns everything an observer
/// could perturb: the global predictions, per-device labels, and the raw
/// pooled-sample matrix bytes.
fn run_case(
    seed: u64,
    kernel_threads: usize,
    traced: bool,
) -> (Vec<usize>, Vec<Vec<usize>>, Vec<u8>) {
    let (fed, mut cfg) = demo_fixture(seed, 6, 3);
    cfg.threads = kernel_threads.min(4);
    cfg.kernel_threads = kernel_threads;
    if traced {
        fed_sc::obs::trace::install_ring(1 << 14);
    }
    let out = FedSc::new(cfg).run(&fed).expect("fed-sc run");
    if traced {
        let events = fed_sc::obs::trace::uninstall();
        assert!(!events.is_empty(), "traced run recorded no spans");
    }
    let sample_bytes: Vec<u8> = out
        .samples
        .as_slice()
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    (out.predictions, out.per_device, sample_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Byte-identity of traced vs. untraced runs across seeds and thread
    /// counts (the acceptance pins 1 and 8 kernel threads explicitly).
    #[test]
    fn traced_run_is_byte_identical_to_untraced(seed in 0u64..1000) {
        let _g = guard();
        for kernel_threads in [1usize, 8] {
            let plain = run_case(seed, kernel_threads, false);
            let traced = run_case(seed, kernel_threads, true);
            prop_assert_eq!(&plain.0, &traced.0, "predictions diverged at {} threads", kernel_threads);
            prop_assert_eq!(&plain.1, &traced.1, "per-device labels diverged at {} threads", kernel_threads);
            prop_assert_eq!(&plain.2, &traced.2, "pooled samples diverged at {} threads", kernel_threads);
        }
    }
}

/// The wire path must hold the same invariant plus exact byte
/// accounting: with the ring installed every uplink carries a ctx-only
/// telemetry envelope in-band, and the server's declared
/// `envelope_bytes` is exactly the uplink delta — so
/// `uplink_bytes - envelope_bytes` (and the downlink) are invariant
/// under tracing, and the clustering output is bitwise unchanged.
#[test]
fn traced_wire_round_is_identical_and_byte_exact() {
    let _g = guard();
    let (fed, cfg) = demo_fixture(42, 6, 3);
    let plain = fed_sc::run_over_wire(&fed, &cfg).expect("untraced wire round");
    fed_sc::obs::trace::install_ring(1 << 14);
    let traced = fed_sc::run_over_wire(&fed, &cfg);
    let events = fed_sc::obs::trace::uninstall();
    let traced = traced.expect("traced wire round");
    assert!(!events.is_empty(), "traced wire round recorded no spans");
    assert_eq!(plain.predictions, traced.predictions);
    assert_eq!(plain.excluded, traced.excluded);
    assert_eq!(plain.envelope_bytes, 0, "untraced uplinks must ship bare");
    assert!(
        traced.envelope_bytes > 0,
        "traced uplinks carried no envelope"
    );
    assert_eq!(
        traced.uplink_bytes,
        plain.uplink_bytes + traced.envelope_bytes,
        "uplink delta must be exactly the declared envelope bytes"
    );
    assert_eq!(traced.downlink_bytes, plain.downlink_bytes);
}

/// Thread count itself must not change the answer either — the traced
/// 1-thread and traced 8-thread runs agree, so the recorder is invariant
/// to scheduling as well as to presence.
#[test]
fn traced_runs_agree_across_thread_counts() {
    let _g = guard();
    let a = run_case(42, 1, true);
    let b = run_case(42, 8, true);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
