//! Cross-crate integration tests: the full Fed-SC pipeline (Algorithm 1)
//! against ground truth, across partitions, backends, channels, and the
//! paper's evaluation criteria.

use fed_sc::clustering::{clustering_accuracy, normalized_mutual_information};
use fed_sc::data::synthetic::{generate, SyntheticConfig};
use fed_sc::federated::partition::{partition_dataset, Partition};
use fed_sc::subspace::theory::{holds_sep, Heterogeneity};
use fed_sc::{BasisDim, CentralBackend, ClusterCountPolicy, FedSc, FedScConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Standard heterogeneous instance: well-separated subspaces, enough
/// devices for the server-side sample density the theory needs.
fn instance(
    l: usize,
    d: usize,
    n: usize,
    l_prime: usize,
    devices: usize,
    per_owner: usize,
    seed: u64,
) -> (fed_sc::federated::FederatedDataset, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let owners = (devices * l_prime).div_ceil(l).max(1);
    let cfg = SyntheticConfig {
        ambient_dim: n,
        subspace_dim: d,
        num_subspaces: l,
        points_per_subspace: per_owner * owners,
        noise_std: 0.0,
    };
    let ds = generate(&cfg, &mut rng);
    let fed = partition_dataset(&ds.data, devices, Partition::NonIid { l_prime }, &mut rng);
    let truth = fed.global_truth();
    (fed, truth)
}

#[test]
fn near_orthogonal_subspaces_cluster_exactly() {
    // d = 3 subspaces in R^40 are near-orthogonal: Fed-SC should be ~exact.
    let (fed, truth) = instance(5, 3, 40, 2, 25, 10, 1);
    let out = FedSc::new(FedScConfig::new(5, CentralBackend::Ssc))
        .run(&fed)
        .unwrap();
    let acc = clustering_accuracy(&truth, &out.predictions);
    assert!(acc > 97.0, "accuracy {acc}");
    let nmi = normalized_mutual_information(&truth, &out.predictions);
    assert!(nmi > 95.0, "nmi {nmi}");
}

#[test]
fn tsc_backend_matches_ssc_with_enough_devices() {
    let (fed, truth) = instance(4, 3, 30, 2, 40, 10, 2);
    let ssc = FedSc::new(FedScConfig::new(4, CentralBackend::Ssc))
        .run(&fed)
        .unwrap();
    let tsc = FedSc::new(FedScConfig::new(4, CentralBackend::Tsc { q: None }))
        .run(&fed)
        .unwrap();
    let a_ssc = clustering_accuracy(&truth, &ssc.predictions);
    let a_tsc = clustering_accuracy(&truth, &tsc.predictions);
    assert!(a_ssc > 95.0, "SSC backend accuracy {a_ssc}");
    assert!(a_tsc > 90.0, "TSC backend accuracy {a_tsc}");
}

#[test]
fn heterogeneity_summary_matches_partition() {
    let (fed, _) = instance(6, 3, 30, 2, 18, 8, 3);
    let het = Heterogeneity::from_device_labels(&fed.device_labels(), 6);
    assert!(het.is_heterogeneous(6));
    // Footnote identity: sum_z L^(z) = sum_l Z_l.
    let s1: usize = het.subspaces_per_device.iter().sum();
    let s2: usize = het.devices_per_subspace.iter().sum();
    assert_eq!(s1, s2);
    // Every device holds at most L' = 2 subspaces.
    assert!(het.subspaces_per_device.iter().all(|&c| c <= 2));
}

#[test]
fn one_shot_contract_holds() {
    // Exactly one uplink and one downlink message per device, and the
    // uplink bit count follows Section IV-E.
    let (fed, _) = instance(4, 3, 30, 2, 16, 8, 4);
    let out = FedSc::new(FedScConfig::new(4, CentralBackend::Ssc))
        .run(&fed)
        .unwrap();
    assert_eq!(out.comm.uplink_messages, 16);
    assert_eq!(out.comm.downlink_messages, 16);
    assert_eq!(out.comm.uplink_bits, 30 * 64 * out.samples.cols() as u64);
    // Downlink: per device, r^(z) labels of ceil(log2 4) = 2 bits.
    assert_eq!(out.comm.downlink_bits, 2 * out.samples.cols() as u64);
}

#[test]
fn predictions_respect_local_partitions() {
    // Phase 3 relabels whole local clusters, so any two points the device
    // put together must share a final label.
    let (fed, _) = instance(4, 3, 30, 2, 12, 8, 5);
    let out = FedSc::new(FedScConfig::new(4, CentralBackend::Ssc))
        .run(&fed)
        .unwrap();
    for (i, &ci) in out.point_cluster.iter().enumerate() {
        for (j, &cj) in out.point_cluster.iter().enumerate().skip(i + 1) {
            if ci == cj {
                assert_eq!(out.predictions[i], out.predictions[j]);
            }
        }
    }
}

#[test]
fn induced_graph_holds_sep_on_easy_instance() {
    let (fed, truth) = instance(4, 3, 40, 2, 24, 10, 6);
    let out = FedSc::new(FedScConfig::new(4, CentralBackend::Ssc))
        .run(&fed)
        .unwrap();
    let g = out.induced_global_affinity();
    // Near-orthogonal subspaces: the sample-level graph has essentially no
    // cross-subspace edges, so the induced graph satisfies SEP up to a tiny
    // numerical tolerance.
    assert!(holds_sep(&g, &truth, 1e-3));
}

#[test]
fn noisy_channel_degrades_gracefully() {
    let (fed, truth) = instance(4, 3, 30, 2, 30, 10, 7);
    let acc_at = |delta: f64| {
        let mut cfg = FedScConfig::new(4, CentralBackend::Ssc);
        cfg.channel.noise_delta = delta;
        let out = FedSc::new(cfg).run(&fed).unwrap();
        clustering_accuracy(&truth, &out.predictions)
    };
    let clean = acc_at(0.0);
    let mild = acc_at(0.05);
    let heavy = acc_at(8.0);
    assert!(clean > 95.0, "clean {clean}");
    assert!(mild > 85.0, "mild noise {mild}");
    // Heavy noise must hurt: samples are drowned (SNR ~ 1/8).
    assert!(heavy < clean, "heavy {heavy} vs clean {clean}");
}

#[test]
fn quantized_uplink_is_lossless_enough() {
    let (fed, truth) = instance(4, 3, 30, 2, 24, 10, 8);
    let mut cfg = FedScConfig::new(4, CentralBackend::Ssc);
    cfg.channel.bits_per_scalar = 8;
    let out = FedSc::new(cfg).run(&fed).unwrap();
    let acc = clustering_accuracy(&truth, &out.predictions);
    assert!(acc > 90.0, "8-bit uplink accuracy {acc}");
    // And the meter reflects the cheaper uplink.
    assert_eq!(out.comm.uplink_bits, 30 * 8 * out.samples.cols() as u64);
}

#[test]
fn real_data_configuration_runs() {
    // Fixed r^(z) upper bound + rank-1 bases (the paper's Table III/IV
    // settings) on a higher-dimensional instance.
    let (fed, truth) = instance(6, 4, 120, 3, 24, 9, 9);
    let mut cfg = FedScConfig::real_data(6, CentralBackend::Ssc, 4);
    cfg.seed = 99;
    assert_eq!(cfg.cluster_count, ClusterCountPolicy::Fixed(4));
    assert_eq!(cfg.basis_dim, BasisDim::Fixed(1));
    let out = FedSc::new(cfg).run(&fed).unwrap();
    let acc = clustering_accuracy(&truth, &out.predictions);
    assert!(acc > 80.0, "real-data config accuracy {acc}");
}

#[test]
fn kfed_loses_to_fed_sc_on_subspace_data() {
    // The headline comparison: subspace-structured data defeats k-means
    // geometry, so Fed-SC must beat k-FED by a wide margin.
    let (fed, truth) = instance(5, 3, 30, 2, 25, 10, 10);
    let fs = FedSc::new(FedScConfig::new(5, CentralBackend::Ssc))
        .run(&fed)
        .unwrap();
    let kf = fed_sc::federated::kfed(&fed, &fed_sc::federated::KFedConfig::new(5, 2)).unwrap();
    let a_fs = clustering_accuracy(&truth, &fs.predictions);
    let a_kf = clustering_accuracy(&truth, &kf.predictions);
    assert!(
        a_fs > a_kf + 20.0,
        "Fed-SC {a_fs} should dominate k-FED {a_kf} on subspace data"
    );
}

#[test]
fn seeded_run_is_byte_identical_across_thread_counts() {
    // The determinism contract of the whole parallel stack: device fan-out,
    // per-point Lasso fan-out, blocked kernels, and per-partition SVDs all
    // produce index-ordered, arithmetic-identical results, so a seeded run
    // must not change a single byte when the thread knobs change.
    let (fed, _) = instance(4, 3, 30, 2, 16, 8, 42);
    let run_with = |threads: usize, kernel_threads: usize| {
        let mut cfg = FedScConfig::new(4, CentralBackend::Ssc);
        cfg.threads = threads;
        cfg.kernel_threads = kernel_threads;
        cfg.seed = 7;
        FedSc::new(cfg).run(&fed).unwrap()
    };
    let serial = run_with(1, 1);
    let parallel = run_with(4, 4);
    assert_eq!(serial.predictions, parallel.predictions);
    assert_eq!(serial.sample_assignment, parallel.sample_assignment);
    assert_eq!(serial.samples.as_slice(), parallel.samples.as_slice());
}

#[test]
fn empty_and_tiny_devices_are_tolerated() {
    // More devices than points in some clusters: several devices end up
    // tiny; the pipeline must still produce a full labeling.
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = SyntheticConfig {
        ambient_dim: 20,
        subspace_dim: 2,
        num_subspaces: 3,
        points_per_subspace: 12,
        noise_std: 0.0,
    };
    let ds = generate(&cfg, &mut rng);
    let fed = partition_dataset(&ds.data, 10, Partition::NonIid { l_prime: 1 }, &mut rng);
    let out = FedSc::new(FedScConfig::new(3, CentralBackend::Ssc))
        .run(&fed)
        .unwrap();
    assert_eq!(out.predictions.len(), 36);
    assert!(out.predictions.iter().all(|&l| l < 3));
}
