//! Integration tests for Section V claims, checked numerically on generated
//! instances: Lemma 2 (estimated cluster spans equal true subspaces under
//! SEP), the heterogeneity benefit of Theorem 1's discussion, and the
//! monotonicity structure of Corollaries 1-2.

// Test code: a panic is a test failure, so unwrap is the idiom here
// (clippy's allow-unwrap-in-tests does not reach integration-test helpers).
#![allow(clippy::unwrap_used)]

use fed_sc::clustering::clustering_accuracy;
use fed_sc::data::synthetic::{generate, SyntheticConfig};
use fed_sc::federated::partition::{partition_dataset, Partition};
use fed_sc::linalg::angles::principal_angle_cosines;
use fed_sc::linalg::svd::dominant_basis;
use fed_sc::subspace::theory::{ssc_affinity_bound, tsc_affinity_bound};
use fed_sc::subspace::{Ssc, SubspaceClusterer};
use fed_sc::{CentralBackend, FedSc, FedScConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lemma2_cluster_spans_equal_true_subspaces() {
    // Near-orthogonal subspaces: local SSC holds SEP, so each connected
    // component spans exactly one true subspace (Lemma 2). Verify via
    // principal angles between the estimated and true bases.
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = SyntheticConfig {
        ambient_dim: 40,
        subspace_dim: 3,
        num_subspaces: 3,
        points_per_subspace: 15,
        noise_std: 0.0,
    };
    let ds = generate(&cfg, &mut rng);
    let g = Ssc::default().affinity(&ds.data.data).unwrap();
    let comp = g.connected_components(1e-6);
    let num_comp = comp.iter().copied().max().unwrap() + 1;
    assert!(
        num_comp >= 3,
        "expected at least 3 components, got {num_comp}"
    );
    for c in 0..num_comp {
        let members: Vec<usize> = (0..ds.data.len()).filter(|&i| comp[i] == c).collect();
        if members.len() < 4 {
            continue; // tiny stray component: span check is meaningless
        }
        // All members share one ground-truth subspace (SEP).
        let l = ds.data.labels[members[0]];
        assert!(members.iter().all(|&i| ds.data.labels[i] == l));
        // The span of the members equals the true basis: all principal
        // angle cosines are 1.
        let cluster = ds.data.data.select_columns(&members);
        let est = dominant_basis(&cluster, 3).unwrap();
        let cos = principal_angle_cosines(&est, &ds.model.bases[l]).unwrap();
        for c in cos {
            assert!(c > 1.0 - 1e-8, "principal angle cosine {c}");
        }
    }
}

#[test]
fn heterogeneity_benefit_more_local_clusters_hurts() {
    // The same global data, partitioned with L' = 2 vs L' = 5: stronger
    // heterogeneity (smaller L') must not do worse. This is the empirical
    // content of the paper's Corollary discussion and Fig. 5 / Table IV.
    //
    // Two robustness choices versus a single cherry-picked draw:
    // * `samples_per_cluster = 2` — with one sample per local cluster the
    //   L' = 2 partition uploads only 80 samples for 10 global clusters,
    //   so central SSC is sample-starved and the comparison measures
    //   central sample count, not heterogeneity. Two samples per cluster
    //   isolate the effect the theorem is about.
    // * Accuracy is averaged over several seeds, so the assertion does not
    //   hinge on one lucky partition draw (the generator stream is an
    //   implementation detail).
    let seeds = [0u64, 1, 2, 3, 4, 5];
    let mut mean2 = 0.0;
    let mut mean5 = 0.0;
    for &seed in &seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SyntheticConfig::paper(10, 120);
        let ds = generate(&cfg, &mut rng);
        let acc_for = |l_prime: usize, rng: &mut StdRng| {
            let fed = partition_dataset(&ds.data, 40, Partition::NonIid { l_prime }, rng);
            let mut c = FedScConfig::new(10, CentralBackend::Ssc);
            c.cluster_count = fed_sc::ClusterCountPolicy::Fixed(l_prime);
            c.samples_per_cluster = 2;
            let out = FedSc::new(c).run(&fed).unwrap();
            clustering_accuracy(&fed.global_truth(), &out.predictions)
        };
        mean2 += acc_for(2, &mut rng);
        mean5 += acc_for(5, &mut rng);
    }
    mean2 /= seeds.len() as f64;
    mean5 /= seeds.len() as f64;
    assert!(
        mean2 + 1e-9 >= mean5 - 2.0,
        "heterogeneity should help: L'=2 gives {mean2}, L'=5 gives {mean5}"
    );
    assert!(mean2 > 90.0, "L'=2 accuracy {mean2}");
}

#[test]
fn corollary_bounds_monotone_in_devices_and_dimension() {
    // Corollary 2: the TSC affinity bound decreases in Z' (log in the
    // denominator) and increases in d (sqrt in the numerator).
    let b_small_z = tsc_affinity_bound(5, 20, 3, 50);
    let b_large_z = tsc_affinity_bound(5, 20, 3, 5000);
    assert!(b_small_z > b_large_z);
    let b_small_d = tsc_affinity_bound(2, 20, 3, 50);
    let b_large_d = tsc_affinity_bound(8, 20, 3, 50);
    assert!(b_large_d > b_small_d);
    // Corollary 1: defined only once (Z' - 1) / d > 1; grows with d for
    // fixed large Z'.
    assert_eq!(ssc_affinity_bound(5, 20, 3, 1, 1.0, 1.0), 0.0);
    let c_small_d = ssc_affinity_bound(2, 20, 3, 500, 1.0, 1.0);
    let c_large_d = ssc_affinity_bound(8, 20, 3, 500, 1.0, 1.0);
    assert!(c_large_d > c_small_d);
}

#[test]
fn samples_inherit_semi_random_model() {
    // The pooled samples of a Fed-SC run are unit-norm and concentrate on
    // the true subspaces (the semi-random model Theorem 1's central step
    // assumes): projecting each sample onto its majority cluster's true
    // basis reproduces it.
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = SyntheticConfig {
        ambient_dim: 30,
        subspace_dim: 3,
        num_subspaces: 4,
        points_per_subspace: 80,
        noise_std: 0.0,
    };
    let ds = generate(&cfg, &mut rng);
    let fed = partition_dataset(&ds.data, 20, Partition::NonIid { l_prime: 2 }, &mut rng);
    let truth = fed.global_truth();
    let out = FedSc::new(FedScConfig::new(4, CentralBackend::Ssc))
        .run(&fed)
        .unwrap();
    // Majority ground-truth label per sample.
    let mut votes = vec![std::collections::HashMap::new(); out.samples.cols()];
    for (g, &s) in out.point_sample.iter().enumerate() {
        if s != usize::MAX {
            *votes[s].entry(truth[g]).or_insert(0usize) += 1;
        }
    }
    let mut checked = 0;
    for (s, vote) in votes.iter().enumerate() {
        let Some((&l, _)) = vote.iter().max_by_key(|&(_, &c)| c) else {
            continue;
        };
        // Pure local clusters only (mixed ones exist when local SSC erred).
        let total: usize = vote.values().sum();
        if *vote.get(&l).unwrap() < total {
            continue;
        }
        let theta = out.samples.col(s);
        let basis = &ds.model.bases[l];
        let coeff = basis.tr_matvec(theta).unwrap();
        let proj = basis.matvec(&coeff).unwrap();
        let err: f64 = proj
            .iter()
            .zip(theta)
            .map(|(p, t)| (p - t).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "sample {s} off its subspace by {err}");
        checked += 1;
    }
    assert!(checked > 10, "too few pure samples checked: {checked}");
}
