//! Property-based tests (proptest) on the invariants the workspace's
//! correctness rests on: linear-algebra factorizations, solver optimality,
//! metric axioms, partitioner bookkeeping, and the sampling step of
//! Algorithm 2.

// Test code: a panic is a test failure, so unwrap is the idiom here
// (clippy's allow-unwrap-in-tests does not reach integration-test helpers).
#![allow(clippy::unwrap_used)]

use fed_sc::clustering::{adjusted_rand_index, clustering_accuracy, normalized_mutual_information};
use fed_sc::federated::partition::{partition_dataset, Partition};
use fed_sc::linalg::eigh::eigh;
use fed_sc::linalg::qr::Qr;
use fed_sc::linalg::random::{random_orthonormal_basis, sample_on_subspace};
use fed_sc::linalg::svd::svd_gram;
use fed_sc::linalg::{vector, Matrix};
use fed_sc::sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver};
use fed_sc::subspace::model::{LabeledData, SubspaceModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..6, 2usize..6).prop_flat_map(|(r, c)| {
        let r = r.max(c); // tall or square for QR
        proptest::collection::vec(-5.0f64..5.0, r * c)
            .prop_map(move |data| Matrix::from_col_major(r, c, data).unwrap())
    })
}

fn labeling(k: usize, n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..k, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(a in small_matrix()) {
        let qr = Qr::new(a.clone()).unwrap();
        let q = qr.thin_q();
        let r = qr.r();
        let back = q.matmul(&r).unwrap();
        prop_assert!(back.sub(&a).unwrap().max_abs() < 1e-9 * a.max_abs().max(1.0));
        let g = q.gram();
        for i in 0..q.cols() {
            for j in 0..q.cols() {
                let e = if i == j { 1.0 } else { 0.0 };
                prop_assert!((g[(i, j)] - e).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn svd_reconstructs_and_matches_gram_spectrum(a in small_matrix()) {
        let svd = svd_gram(&a).unwrap();
        prop_assert!(svd.reconstruct().sub(&a).unwrap().max_abs() < 1e-6 * a.max_abs().max(1.0));
        // Singular values squared = eigenvalues of A^T A (descending).
        let eig = eigh(&a.gram()).unwrap();
        let mut evals: Vec<f64> = eig.eigenvalues.iter().rev().map(|&v| v.max(0.0)).collect();
        evals.truncate(svd.s.len());
        for (s, ev) in svd.s.iter().zip(&evals) {
            prop_assert!((s * s - ev).abs() < 1e-6 * (1.0 + ev.abs()));
        }
    }

    #[test]
    fn eigh_residual_and_ordering(a in small_matrix()) {
        // Symmetrize.
        let s = {
            let t = a.transpose();
            let sq = if a.rows() == a.cols() { a.clone() } else { a.gram() };
            let _ = t;
            sq
        };
        let sym = s.add(&s.transpose()).unwrap();
        let eig = eigh(&sym).unwrap();
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        for (i, &w) in eig.eigenvalues.iter().enumerate() {
            let v = eig.eigenvectors.col(i);
            let av = sym.matvec(v).unwrap();
            let r: f64 = av.iter().zip(v).map(|(&x, &y)| (x - w * y).abs()).fold(0.0, f64::max);
            prop_assert!(r < 1e-7 * sym.max_abs().max(1.0), "residual {r}");
        }
    }

    #[test]
    fn lasso_kkt_optimality(
        seed in 0u64..1000,
        cols in 4usize..10,
        lambda_scale in 1.0f64..100.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = fed_sc::linalg::random::gaussian_matrix(&mut rng, 5, cols);
        let gram = x.gram();
        // Worst-case optimality check: random Gaussian dictionaries are far
        // more ill-conditioned than SSC's unit-norm inputs, so give CD the
        // sweep budget it needs to actually reach the KKT point.
        let opts = LassoOptions { max_iters: 100_000, ..Default::default() };
        let solver = LassoSolver::new(&gram, opts);
        let b = gram.col(0);
        let lambda = ssc_lambda(b, 0, lambda_scale);
        let c = solver.solve(b, lambda, 0).expect("well-formed lasso instance");
        let viol =
            solver.kkt_violation(b, lambda, 0, &c).expect("well-formed lasso instance");
        prop_assert!(viol < 1e-4 * lambda.max(1.0), "KKT violation {viol} at lambda {lambda}");
        // Exclusion respected.
        prop_assert!(c.to_dense()[0] == 0.0);
    }

    #[test]
    fn metrics_axioms(truth in labeling(4, 24), perm_seed in 0u64..24) {
        // Identity scores 100 / 1.
        prop_assert_eq!(clustering_accuracy(&truth, &truth), 100.0);
        prop_assert!((normalized_mutual_information(&truth, &truth) - 100.0).abs() < 1e-9
            || truth.iter().all(|&l| l == truth[0]));
        prop_assert!((adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-12);
        // Permutation invariance: relabel via a fixed permutation.
        let perm: Vec<usize> = {
            let mut p: Vec<usize> = (0..4).collect();
            p.rotate_left((perm_seed % 4) as usize);
            p
        };
        let relabeled: Vec<usize> = truth.iter().map(|&l| perm[l]).collect();
        prop_assert_eq!(clustering_accuracy(&truth, &relabeled), 100.0);
        // Bounds.
        let other = [0usize].repeat(truth.len());
        let acc = clustering_accuracy(&truth, &other);
        prop_assert!((0.0..=100.0).contains(&acc));
    }

    #[test]
    fn accuracy_is_symmetric(a in labeling(3, 18), b in labeling(4, 18)) {
        let ab = clustering_accuracy(&a, &b);
        let ba = clustering_accuracy(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    #[test]
    fn partitioner_invariants(
        seed in 0u64..500,
        devices in 1usize..8,
        l_prime in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SubspaceModel::random(&mut rng, 8, 2, 4);
        let ds = model.sample_dataset(&mut rng, &[6, 6, 6, 6], 0.0);
        let fed = partition_dataset(&ds, devices, Partition::NonIid { l_prime }, &mut rng);
        // Every point exactly once.
        let mut seen = [false; 24];
        for idx in &fed.global_index {
            for &i in idx {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Truth round-trips.
        prop_assert_eq!(fed.global_truth(), ds.labels.clone());
        // Pooled reconstruction is exact.
        let pooled: LabeledData = fed.pooled();
        prop_assert_eq!(&pooled.labels, &ds.labels);
        // Coverage: every cluster present somewhere.
        let mut present = [false; 4];
        for dev in &fed.devices {
            for &l in &dev.labels {
                present[l] = true;
            }
        }
        prop_assert!(present.iter().all(|&p| p));
    }

    #[test]
    fn subspace_sampler_invariants(seed in 0u64..500, n in 4usize..12, d in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = d.min(n);
        let u = random_orthonormal_basis(&mut rng, n, d);
        let theta = sample_on_subspace(&mut rng, &u);
        // Unit norm.
        prop_assert!((vector::norm2(&theta) - 1.0).abs() < 1e-10);
        // In span: projection reproduces the sample.
        let coeff = u.tr_matvec(&theta).unwrap();
        let proj = u.matvec(&coeff).unwrap();
        let err: f64 = proj.iter().zip(&theta).map(|(p, t)| (p - t).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-9);
    }
}
