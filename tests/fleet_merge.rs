//! Algebra of the fleet metric merge, and the end-to-end counter-sum
//! invariant under faults.
//!
//! The root's fleet-wide metrics export is only meaningful if the merge
//! is insensitive to *how* the tree combined its children: snapshots
//! must merge associatively and commutatively so any tier shape and any
//! arrival order produce the identical export. The property tests pin
//! that algebra; the fault-injection test pins the operational corollary
//! — after a lossy round, the root's fleet counters equal the exact sum
//! of the per-process snapshots that were actually delivered.

// Test code: a panic is a test failure, so unwrap is the idiom here.
#![allow(clippy::unwrap_used)]

use bytes::Bytes;
use fed_sc::obs::fleet::{Envelope, FleetCollector, TraceContext};
use fed_sc::obs::metrics::{HistogramSnapshot, MetricsSnapshot};
use fedsc_transport::{
    DeviceTransport, FaultConfig, FaultyInMemoryTransport, ServerTransport, Transport,
};
use proptest::prelude::*;
use std::time::Duration;

/// Small shared name pool so independently generated snapshots collide on
/// some keys (the add path) and diverge on others (the insert path).
const NAMES: [&str; 4] = [
    "lasso.sweeps",
    "wire.uplink_bytes",
    "pool.tasks",
    "hier.agg_rounds",
];

/// Histogram snapshots whose bounds are drawn from a tiny value pool, so
/// cross-snapshot merges exercise both coinciding and disjoint bounds.
fn histogram_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (
        collection::vec(1u64..8, 0usize..4),
        collection::vec(0u64..1_000, 5usize),
        0u64..1_000,
        0u64..100_000,
    )
        .prop_map(|(mut bounds, mut buckets, count, sum)| {
            bounds.sort_unstable();
            bounds.dedup();
            // Shape invariant of a live histogram: one bucket per bound
            // plus the trailing overflow bucket.
            buckets.truncate(bounds.len() + 1);
            HistogramSnapshot {
                bounds,
                buckets,
                count,
                sum,
            }
        })
}

/// Whole-registry snapshots with per-name presence masks, so merged key
/// sets genuinely differ between operands.
fn metrics_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        collection::vec((0u32..2, 0u64..1_000), NAMES.len()),
        collection::vec((0u32..2, -500i32..500), NAMES.len()),
        collection::vec((0u32..2, histogram_snapshot()), NAMES.len()),
    )
        .prop_map(|(cs, gs, hs)| {
            let mut snap = MetricsSnapshot::default();
            for (i, (on, v)) in cs.into_iter().enumerate() {
                if on == 1 {
                    snap.counters.insert(NAMES[i].to_string(), v);
                }
            }
            for (i, (on, v)) in gs.into_iter().enumerate() {
                if on == 1 {
                    snap.gauges.insert(NAMES[i].to_string(), i64::from(v));
                }
            }
            for (i, (on, h)) in hs.into_iter().enumerate() {
                if on == 1 {
                    snap.histograms.insert(NAMES[i].to_string(), h);
                }
            }
            snap
        })
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union-of-bounds histogram merge is associative: a tier merging
    /// (a ⊕ b) then c equals one merging a then (b ⊕ c).
    #[test]
    fn histogram_merge_is_associative(
        a in histogram_snapshot(),
        b in histogram_snapshot(),
        c in histogram_snapshot(),
    ) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Histogram merge is commutative — sibling arrival order at an
    /// aggregator cannot change the merged buckets.
    #[test]
    fn histogram_merge_is_commutative(
        a in histogram_snapshot(),
        b in histogram_snapshot(),
    ) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Snapshot merge (counters, gauges, histograms together) is
    /// associative and commutative.
    #[test]
    fn snapshot_merge_is_associative_and_commutative(
        a in metrics_snapshot(),
        b in metrics_snapshot(),
        c in metrics_snapshot(),
    ) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// Merge-order determinism over a whole sibling set: folding the
    /// children forward, reversed, or interleaved odd/even — three shapes
    /// an aggregation tree can realize — yields the identical export.
    #[test]
    fn snapshot_merge_order_is_immaterial(
        snaps in collection::vec(metrics_snapshot(), 1usize..6),
    ) {
        let fold = |order: &[usize]| {
            let mut acc = MetricsSnapshot::default();
            for &i in order {
                acc.merge(&snaps[i]);
            }
            acc
        };
        let forward: Vec<usize> = (0..snaps.len()).collect();
        let reversed: Vec<usize> = forward.iter().rev().copied().collect();
        let interleaved: Vec<usize> = forward
            .iter()
            .filter(|i| *i % 2 == 0)
            .chain(forward.iter().filter(|i| *i % 2 == 1))
            .copied()
            .collect();
        let want = fold(&forward);
        prop_assert_eq!(&fold(&reversed), &want);
        prop_assert_eq!(&fold(&interleaved), &want);
    }

    /// The envelope codec round-trips metrics exactly — the merge algebra
    /// above survives the process boundary bit for bit.
    #[test]
    fn envelope_round_trips_metrics_exactly(snap in metrics_snapshot()) {
        let env = Envelope {
            ctx: None,
            metrics: Some(snap.clone()),
            spans: vec![],
        };
        let bytes = env.encode();
        let (decoded, used) = Envelope::strip(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded.unwrap().metrics.unwrap(), snap);
    }
}

/// Per-process snapshot for simulated device `z`: one shared counter, one
/// per-device counter, a gauge, and a histogram with device-dependent
/// bounds (so the fleet merge must union bounds, not just add).
fn device_snapshot(z: usize) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert("dev.work".to_string(), 100 + z as u64);
    snap.counters.insert(format!("dev.{z}.sends"), 1);
    snap.gauges.insert("dev.backlog".to_string(), z as i64 - 3);
    snap.histograms.insert(
        "dev.latency_us".to_string(),
        HistogramSnapshot {
            bounds: vec![(z as u64 % 3) + 1, 10],
            buckets: vec![z as u64, 2, 1],
            count: z as u64 + 3,
            sum: 10 * z as u64,
        },
    );
    snap
}

/// Seeded lossy round: 12 devices each ship their snapshot in a fleet
/// envelope over a drop-injecting link (single attempt, no retry). The
/// collector's fleet metrics must equal the merge of exactly the
/// delivered processes' snapshots — dropped telemetry vanishes cleanly,
/// delivered telemetry is counted exactly once.
#[test]
fn fleet_counters_equal_sum_of_delivered_processes() {
    const DEVICES: usize = 12;
    const INNER: [u8; 16] = [0xAB; 16];
    let transport = FaultyInMemoryTransport::new(FaultConfig {
        seed: 41,
        drop: 0.3,
        ..FaultConfig::default()
    });
    let (mut server, devices) = transport.open(DEVICES).unwrap();

    let mut delivered = vec![false; DEVICES];
    let mut snaps = Vec::with_capacity(DEVICES);
    for (z, mut dev) in devices.into_iter().enumerate() {
        let snap = device_snapshot(z);
        let env = Envelope {
            ctx: Some(TraceContext {
                run_id: 99,
                round: 0,
                tier: 0,
                node: z as u64,
                parent: 0,
                pid: 1000 + z as u64,
                parent_span: 0,
            }),
            metrics: Some(snap.clone()),
            spans: vec![],
        };
        delivered[z] = dev.send_uplink(&Bytes::from(env.wrap(&INNER))).is_ok();
        snaps.push(snap);
    }

    let mut fleet = FleetCollector::new();
    let mut received = vec![false; DEVICES];
    while let Ok((z, payload)) = server.recv_uplink(Duration::from_millis(200)) {
        assert!(
            !received[z],
            "device {z} delivered twice on a drop-only plan"
        );
        received[z] = true;
        let (env, env_bytes) = Envelope::strip(payload.as_slice()).unwrap();
        let env = env.unwrap();
        assert_eq!(
            &payload.as_slice()[env_bytes..],
            &INNER,
            "inner payload corrupted"
        );
        fleet.absorb(&env, env_bytes);
    }

    assert_eq!(
        received, delivered,
        "receipt set diverged from send outcomes"
    );
    let n = delivered.iter().filter(|&&d| d).count();
    assert!(
        n > 0 && n < DEVICES,
        "fault plan degenerated ({n}/{DEVICES} delivered); pick another seed"
    );

    let mut expect = MetricsSnapshot::default();
    for (z, snap) in snaps.iter().enumerate() {
        if delivered[z] {
            expect.merge(snap);
        }
    }
    assert_eq!(fleet.metrics, expect);
    // The per-process markers double-check the set: exactly the delivered
    // devices' private counters appear.
    for (z, &was_delivered) in delivered.iter().enumerate() {
        assert_eq!(
            fleet
                .metrics
                .counters
                .contains_key(&format!("dev.{z}.sends")),
            was_delivered,
            "device {z} marker counter"
        );
    }
    assert_eq!(
        fleet.contexts.len(),
        n,
        "one trace context per delivered uplink"
    );
}
